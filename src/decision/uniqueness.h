// The uniqueness problem UNIQ(q) — Theorem 3.2.
//
//   input: c-database representing worlds; instance I; query q
//   question: is q(rep(database)) the singleton set {I}?
//
// Complexity landscape reproduced here:
//   - g-tables, identity query:                 PTIME (Thm 3.2(1))
//   - pos. existential views of e-tables:       PTIME (Thm 3.2(2))
//   - c-tables, identity:                       coNP-complete (Thm 3.2(3))
//   - pos. existential-with-!= views of tables: coNP-complete (Thm 3.2(4))
// The general case is decided by exhaustive world enumeration.

#ifndef PW_DECISION_UNIQUENESS_H_
#define PW_DECISION_UNIQUENESS_H_

#include <optional>

#include "core/instance.h"
#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// PTIME uniqueness for g-table databases (Thm 3.2(1)): normalize (substitute
/// every variable the global condition forces to a constant), then rep = {I}
/// iff the global condition is satisfiable, the matrix is ground, and the
/// matrix equals I. Returns std::nullopt when some local condition is
/// non-trivial (not a g-table database).
std::optional<bool> UniqGTables(const CDatabase& database,
                                const Instance& instance);

/// PTIME uniqueness for positive existential views of e-table databases
/// (Thm 3.2(2), via the Imielinski–Lipski c-table construction):
///   (alpha) every fact of I is a certain answer of the view, and
///   (beta)  for every row (t, phi) of the result c-table and every DNF
///           disjunct of phi, the e-table obtained from the full result
///           matrix with the disjunct's equalities incorporated represents
///           exactly {I}.
/// Returns std::nullopt when the query is not positive existential (without
/// !=) or the database is not an e-table database (kind above e-table).
std::optional<bool> UniqPosExistentialView(const RaQuery& query,
                                           const CDatabase& database,
                                           const Instance& instance);

/// Exact uniqueness for arbitrary views of c-databases, by enumerating
/// worlds (up to fresh-constant renaming) and comparing each against I.
/// Worst case exponential — the problem is coNP-complete already for a
/// single c-table with the identity query.
bool UniquenessSearch(const View& view, const CDatabase& database,
                      const Instance& instance);

/// Dispatcher: PTIME special cases when applicable, else search.
bool Uniqueness(const View& view, const CDatabase& database,
                const Instance& instance);

}  // namespace pw

#endif  // PW_DECISION_UNIQUENESS_H_
