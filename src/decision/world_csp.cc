#include "decision/world_csp.h"

#include "condition/atom_cnf.h"
#include "condition/binding_env.h"

namespace pw {

namespace {

/// The clause set "row does not produce `fact`": some local atom fails or
/// some tuple position differs.
AtomClause RowMissesFactClause(const CRow& row, const Fact& fact) {
  AtomClause clause;
  Conjunction simplified = row.local().Simplified();
  for (const CondAtom& atom : simplified.atoms()) {
    clause.push_back(Negate(atom));
  }
  for (size_t p = 0; p < row.tuple.size(); ++p) {
    clause.push_back(Neq(row.tuple[p], Term::Const(fact[p])));
  }
  return clause;
}

}  // namespace

bool ExistsWorldOtherThan(const CDatabase& database,
                          const Instance& instance) {
  if (database.num_tables() != instance.num_relations()) return true;
  for (size_t k = 0; k < database.num_tables(); ++k) {
    if (database.table(k).arity() != instance.relation(k).arity()) {
      return true;
    }
  }
  Conjunction global = database.CombinedGlobal();

  // Reason (a): some row is "on" under a satisfying valuation and lands
  // outside its target relation.
  for (size_t k = 0; k < database.num_tables(); ++k) {
    const Relation& target = instance.relation(k);
    for (const CRow& row : database.table(k).rows()) {
      BindingEnv env;
      if (!env.Assert(global) || !env.Assert(row.local())) continue;
      std::vector<AtomClause> clauses;
      bool impossible = false;
      for (const Fact& f : target) {
        AtomClause clause;
        for (size_t p = 0; p < row.tuple.size(); ++p) {
          clause.push_back(Neq(row.tuple[p], Term::Const(f[p])));
        }
        if (clause.empty()) {  // arity 0: the row is exactly this fact
          impossible = true;
          break;
        }
        clauses.push_back(std::move(clause));
      }
      if (impossible) continue;
      if (SolveAtomCnf(env, std::move(clauses))) return true;
    }
  }

  // Reason (b): some instance fact is produced by no row.
  for (size_t k = 0; k < database.num_tables(); ++k) {
    for (const Fact& f : instance.relation(k)) {
      if (ExistsWorldMissingFact(database, k, f)) return true;
    }
  }
  return false;
}

bool ExistsWorldMissingFact(const CDatabase& database, size_t relation_index,
                            const Fact& fact) {
  if (relation_index >= database.num_tables()) return true;
  const CTable& table = database.table(relation_index);
  if (static_cast<size_t>(table.arity()) != fact.size()) return true;
  BindingEnv env;
  if (!env.Assert(database.CombinedGlobal())) {
    return false;  // rep empty: no world at all, so no world missing it
  }
  std::vector<AtomClause> clauses;
  clauses.reserve(table.num_rows());
  for (const CRow& row : table.rows()) {
    clauses.push_back(RowMissesFactClause(row, fact));
  }
  return SolveAtomCnf(env, std::move(clauses));
}

}  // namespace pw
