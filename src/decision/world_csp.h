// Clause-CSP procedures over the worlds of a c-database.
//
// Several decision problems reduce to "is there a satisfying valuation whose
// world has property X", where X decomposes into disjunctions of condition
// atoms. These run orders of magnitude faster than raw valuation
// enumeration while keeping the right worst-case complexity.

#ifndef PW_DECISION_WORLD_CSP_H_
#define PW_DECISION_WORLD_CSP_H_

#include "core/instance.h"
#include "tables/ctable.h"

namespace pw {

/// Is there a world of rep(database) different from `instance`? (A world
/// differs iff some "on" row lands outside the instance, or some instance
/// fact is produced by no row.)
bool ExistsWorldOtherThan(const CDatabase& database, const Instance& instance);

/// Is there a world of rep(database) in which relation `relation_index`
/// does not contain `fact`? (I.e. the fact is NOT certain.)
bool ExistsWorldMissingFact(const CDatabase& database, size_t relation_index,
                            const Fact& fact);

}  // namespace pw

#endif  // PW_DECISION_WORLD_CSP_H_
