// The possibility problems POSS(k, q) and POSS(*, q) — Theorems 5.1, 5.2.
//
//   input: c-database; query q; a set of facts P
//   question: is there a world I in q(rep(database)) with P subseteq I?
//
// Complexity landscape reproduced here:
//   - POSS(*, -) on Codd-tables: PTIME via bipartite matching (Thm 5.1(1))
//   - POSS(*, -) on e-/i-tables: NP-complete (Thm 5.1(2,3)); exact search
//   - POSS(k, q) for positive existential q on c-tables: PTIME for fixed k
//     via the Imielinski–Lipski c-table image (Thm 5.2(1))
//   - POSS(1, q) for first order / DATALOG q on tables: NP-complete
//     (Thm 5.2(2,3)); exact valuation enumeration

#ifndef PW_DECISION_POSSIBILITY_H_
#define PW_DECISION_POSSIBILITY_H_

#include <optional>
#include <vector>

#include "core/instance.h"
#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// PTIME unbounded possibility for Codd-table databases: P subseteq sigma(T)
/// for some sigma iff, per relation, a bipartite matching saturates the
/// pattern facts (each pattern fact handled by a distinct row; since each
/// variable occurs once, bindings never clash). Returns std::nullopt if the
/// database is not a Codd-table database.
std::optional<bool> PossUnboundedCoddTables(const CDatabase& database,
                                            const Instance& pattern);

/// PTIME (for fixed pattern size) bounded possibility for positive
/// existential queries on c-databases (Thm 5.2(1)): computes the c-table
/// image of the query, then searches row assignments for the k pattern
/// facts with consistency in a binding environment — O(rows^k) combinations.
/// Returns std::nullopt if the query is not positive existential (!= is
/// allowed).
std::optional<bool> PossBoundedPosExistential(
    const RaQuery& query, const CDatabase& database,
    const std::vector<LocatedFact>& pattern);

/// Demand-path possibility for DATALOG views: every pattern fact is a fully
/// bound goal atom, answered through the magic-set rewrite
/// (DatalogQueryOnCTables) — only demand-reachable conditioned facts are
/// derived, not the whole fixpoint. Each restricted row records the exact
/// condition under which its fact is in the view of a world, so the pattern
/// is possible iff some choice of one row per fact is satisfiable together
/// with the combined global condition (an interner query per combination).
/// Exact over the infinite domain. Returns std::nullopt if the view is not
/// a DATALOG query, if the rewrite leaves some demanded predicate with an
/// all-free binding pattern (demand then degenerates to the full fixpoint —
/// the SAT-gadget shape), or if the demand evaluation exhausts its
/// derivation budget (conditioned fixpoints can grow exponentially — the
/// paper's lower bounds). In every nullopt case the dispatcher falls back
/// to the per-world search.
std::optional<bool> PossDatalogDemand(const View& view,
                                      const CDatabase& database,
                                      const std::vector<LocatedFact>& pattern);

/// Exact possibility for arbitrary views, by enumerating satisfying
/// valuations and testing P subseteq view(world). NP in general.
bool PossibilitySearch(const View& view, const CDatabase& database,
                       const std::vector<LocatedFact>& pattern);

/// Dispatcher for POSS(k, q): PTIME special cases when applicable, else
/// search.
bool Possibility(const View& view, const CDatabase& database,
                 const std::vector<LocatedFact>& pattern);

/// Dispatcher for POSS(*, q) with the pattern given as an instance.
bool PossibilityUnbounded(const View& view, const CDatabase& database,
                          const Instance& pattern);

/// Flattens an instance into located facts (for moving between the bounded
/// and unbounded interfaces).
std::vector<LocatedFact> ToLocatedFacts(const Instance& pattern);

}  // namespace pw

#endif  // PW_DECISION_POSSIBILITY_H_
