// The membership problem MEMB(q) — Theorem 3.1.
//
//   input: instance I0; c-database representing a set of worlds; query q
//   question: is I0 in q(rep(database))?
//
// Complexity landscape reproduced here:
//   - Codd-tables, identity query: PTIME via bipartite matching (Thm 3.1(1))
//   - e-/i-/g-/c-tables, identity:  NP-complete (Thm 3.1(2,3)); exact
//     backtracking search over row-to-fact assignments
//   - views of tables:              NP-complete (Thm 3.1(4)); exact
//     enumeration of valuations (up to fresh-constant renaming)

#ifndef PW_DECISION_MEMBERSHIP_H_
#define PW_DECISION_MEMBERSHIP_H_

#include <optional>

#include "core/instance.h"
#include "decision/view.h"
#include "tables/ctable.h"

namespace pw {

/// PTIME membership for Codd-table databases (paper's algorithm, reduction
/// to maximum bipartite matching). Returns std::nullopt if `database` is not
/// a Codd-table database (conditions present, or some variable occurs more
/// than once across all tuples).
std::optional<bool> MembershipCoddTables(const CDatabase& database,
                                         const Instance& instance);

/// Tuning knobs for MembershipSearch — exposed for the ablation benchmarks;
/// the defaults are what every caller should use.
struct MembershipSearchOptions {
  /// Recompute per-row viable options at every node, fail on empty, and
  /// branch on the most constrained row (MRV). Off: static first-pending
  /// order with options checked only when taken.
  bool forward_checking = true;
  /// Fail when some uncovered instance fact is mappable by no pending row.
  bool coverage_pruning = true;
};

/// Exact membership for arbitrary c-databases: backtracking over per-row
/// choices (map the row onto a fact of the instance, or suppress it by
/// violating one local-condition atom), with consistency maintained in a
/// revertible binding environment. Worst case exponential (the problem is
/// NP-complete already for a single e-table or i-table).
bool MembershipSearch(const CDatabase& database, const Instance& instance,
                      const MembershipSearchOptions& options = {});

/// Dispatcher: matching-based PTIME algorithm when the database is a vector
/// of Codd-tables, exact search otherwise.
bool Membership(const CDatabase& database, const Instance& instance);

/// MEMB(q): is `instance` in q(rep(database))? Identity views dispatch to
/// Membership; otherwise enumerates satisfying valuations over Delta union
/// Delta' and compares view images.
bool MembershipInView(const View& view, const CDatabase& database,
                      const Instance& instance);

}  // namespace pw

#endif  // PW_DECISION_MEMBERSHIP_H_
