// The paper's complexity classification, encoded as data.
//
// Fig. 2 of the paper classifies the 49 cases of the containment problem by
// the representation of each side; Theorems 3.1, 3.2, 5.1, 5.2 and 5.3
// classify membership, uniqueness, possibility and certainty. This module
// encodes those classifications so benchmarks and tools can print the
// predicted class next to measured behaviour.

#ifndef PW_DECISION_COMPLEXITY_MAP_H_
#define PW_DECISION_COMPLEXITY_MAP_H_

#include <string>

#include "tables/ctable.h"

namespace pw {

/// The seven representation kinds of Fig. 2.
enum class RepKind {
  kInstance = 0,
  kCoddTable = 1,
  kETable = 2,
  kITable = 3,
  kGTable = 4,
  kCTable = 5,
  kView = 6,  // a (positive existential, in the lower bounds) query applied
              // to one of the above
};

/// The complexity classes appearing in the paper's classification.
enum class ComplexityClass { kPTime, kNp, kCoNp, kPi2p };

std::string ToString(RepKind kind);
std::string ToString(ComplexityClass c);

/// RepKind of a c-database under the identity view.
RepKind RepKindOf(const CDatabase& database);

/// Fig. 2: the complexity of CONT(lhs contained in rhs), completeness for
/// the class unless PTIME.
ComplexityClass ContainmentComplexity(RepKind lhs, RepKind rhs);

/// Theorem 3.1 (and Prop. 2.1(2)): the complexity of MEMB.
ComplexityClass MembershipComplexity(RepKind rep);

/// Theorem 3.2 (and Prop. 2.1(3)): the complexity of UNIQ. `view` kinds here
/// mean positive existential with != views of tables (Thm 3.2(4)); positive
/// existential views of e-tables are PTIME (Thm 3.2(2)) and are reported by
/// UniquenessComplexityPosExistentialETable().
ComplexityClass UniquenessComplexity(RepKind rep);

/// Thm 3.2(2): pos. existential (no !=) views of e-tables.
ComplexityClass UniquenessComplexityPosExistentialETable();

/// Theorem 5.1: the complexity of POSS(*, -) / POSS(*, q) per representation.
ComplexityClass PossibilityUnboundedComplexity(RepKind rep);

/// Theorem 5.2: the complexity of POSS(k, q) per query fragment.
enum class QueryFragment { kPositiveExistential, kFirstOrder, kDatalog };
ComplexityClass PossibilityBoundedComplexity(QueryFragment fragment);

/// Theorem 5.3: the complexity of CERT per query fragment / representation.
/// DATALOG on g-tables: PTIME; first order on tables (or anything on
/// c-tables): coNP-complete.
ComplexityClass CertaintyComplexity(QueryFragment fragment, RepKind rep);

}  // namespace pw

#endif  // PW_DECISION_COMPLEXITY_MAP_H_
