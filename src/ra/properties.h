// Syntactic fragment checks for relational algebra expressions.

#ifndef PW_RA_PROPERTIES_H_
#define PW_RA_PROPERTIES_H_

#include "ra/expr.h"

namespace pw {

/// True iff `expr` uses only project / select-with-= / product / union /
/// relation references / constant relations — the positive existential
/// queries of Section 2.1. With `allow_neq`, select atoms may also use !=
/// (the "positive existential with !=" fragment of Theorem 3.2(4)).
bool IsPositiveExistential(const RaExpr& expr, bool allow_neq = false);

/// True iff every expression of the query is positive existential.
bool IsPositiveExistential(const RaQuery& query, bool allow_neq = false);

/// True iff the expression contains a difference operator (i.e. needs the
/// full first order fragment).
bool UsesDifference(const RaExpr& expr);

}  // namespace pw

#endif  // PW_RA_PROPERTIES_H_
