#include "ra/properties.h"

namespace pw {

bool IsPositiveExistential(const RaExpr& expr, bool allow_neq) {
  switch (expr.op()) {
    case RaOp::kRel:
    case RaOp::kConstRel:
      return true;
    case RaOp::kProject:
      return IsPositiveExistential(expr.input(), allow_neq);
    case RaOp::kSelect:
      if (!allow_neq) {
        for (const SelectAtom& a : expr.atoms()) {
          if (!a.is_equality) return false;
        }
      }
      return IsPositiveExistential(expr.input(), allow_neq);
    case RaOp::kProduct:
    case RaOp::kUnion:
      return IsPositiveExistential(expr.left(), allow_neq) &&
             IsPositiveExistential(expr.right(), allow_neq);
    case RaOp::kDiff:
      return false;
  }
  return false;
}

bool IsPositiveExistential(const RaQuery& query, bool allow_neq) {
  for (const RaExpr& e : query) {
    if (!IsPositiveExistential(e, allow_neq)) return false;
  }
  return true;
}

bool UsesDifference(const RaExpr& expr) {
  switch (expr.op()) {
    case RaOp::kRel:
    case RaOp::kConstRel:
      return false;
    case RaOp::kProject:
    case RaOp::kSelect:
      return UsesDifference(expr.input());
    case RaOp::kProduct:
    case RaOp::kUnion:
      return UsesDifference(expr.left()) || UsesDifference(expr.right());
    case RaOp::kDiff:
      return true;
  }
  return false;
}

}  // namespace pw
