#include "ra/eval.h"

#include <cassert>

namespace pw {

namespace {

ConstId Resolve(const ColOrConst& o, const Fact& fact) {
  return o.is_column ? fact[o.column] : o.constant;
}

bool SatisfiesAtoms(const std::vector<SelectAtom>& atoms, const Fact& fact) {
  for (const SelectAtom& a : atoms) {
    ConstId l = Resolve(a.lhs, fact);
    ConstId r = Resolve(a.rhs, fact);
    if (a.is_equality ? (l != r) : (l == r)) return false;
  }
  return true;
}

}  // namespace

Relation Eval(const RaExpr& expr, const Instance& input) {
  switch (expr.op()) {
    case RaOp::kRel: {
      assert(expr.rel_index() < input.num_relations());
      const Relation& r = input.relation(expr.rel_index());
      assert(r.arity() == expr.arity());
      return r;
    }
    case RaOp::kConstRel:
      return expr.const_relation();
    case RaOp::kProject: {
      Relation in = Eval(expr.input(), input);
      Relation out(expr.arity());
      for (const Fact& f : in) {
        Fact g;
        g.reserve(expr.outputs().size());
        for (const ColOrConst& o : expr.outputs()) g.push_back(Resolve(o, f));
        out.Insert(g);
      }
      return out;
    }
    case RaOp::kSelect: {
      Relation in = Eval(expr.input(), input);
      Relation out(expr.arity());
      for (const Fact& f : in) {
        if (SatisfiesAtoms(expr.atoms(), f)) out.Insert(f);
      }
      return out;
    }
    case RaOp::kProduct: {
      Relation l = Eval(expr.left(), input);
      Relation r = Eval(expr.right(), input);
      Relation out(expr.arity());
      for (const Fact& fl : l) {
        for (const Fact& fr : r) {
          Fact f = fl;
          f.insert(f.end(), fr.begin(), fr.end());
          out.Insert(f);
        }
      }
      return out;
    }
    case RaOp::kUnion:
      return Eval(expr.left(), input).UnionWith(Eval(expr.right(), input));
    case RaOp::kDiff: {
      Relation l = Eval(expr.left(), input);
      Relation r = Eval(expr.right(), input);
      Relation out(expr.arity());
      for (const Fact& f : l) {
        if (!r.Contains(f)) out.Insert(f);
      }
      return out;
    }
  }
  return Relation(expr.arity());
}

Instance EvalQuery(const RaQuery& query, const Instance& input) {
  std::vector<Relation> out;
  out.reserve(query.size());
  for (const RaExpr& e : query) out.push_back(Eval(e, input));
  return Instance(std::move(out));
}

}  // namespace pw
