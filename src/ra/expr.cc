#include "ra/expr.h"

#include <cassert>

namespace pw {

RaExpr RaExpr::Rel(size_t index, int arity) {
  auto node = std::make_shared<Node>();
  node->op = RaOp::kRel;
  node->arity = arity;
  node->rel_index = index;
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Project(RaExpr input, std::vector<ColOrConst> outputs) {
  for (const ColOrConst& o : outputs) {
    assert(!o.is_column || (o.column >= 0 && o.column < input.arity()));
    (void)o;
  }
  auto node = std::make_shared<Node>();
  node->op = RaOp::kProject;
  node->arity = static_cast<int>(outputs.size());
  node->outputs = std::move(outputs);
  node->children.push_back(std::move(input));
  return RaExpr(std::move(node));
}

RaExpr RaExpr::ProjectCols(RaExpr input, const std::vector<int>& columns) {
  std::vector<ColOrConst> outputs;
  outputs.reserve(columns.size());
  for (int c : columns) outputs.push_back(ColOrConst::Col(c));
  return Project(std::move(input), std::move(outputs));
}

RaExpr RaExpr::Select(RaExpr input, std::vector<SelectAtom> atoms) {
  auto node = std::make_shared<Node>();
  node->op = RaOp::kSelect;
  node->arity = input.arity();
  node->atoms = std::move(atoms);
  node->children.push_back(std::move(input));
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Product(RaExpr left, RaExpr right) {
  auto node = std::make_shared<Node>();
  node->op = RaOp::kProduct;
  node->arity = left.arity() + right.arity();
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Union(RaExpr left, RaExpr right) {
  assert(left.arity() == right.arity());
  auto node = std::make_shared<Node>();
  node->op = RaOp::kUnion;
  node->arity = left.arity();
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Diff(RaExpr left, RaExpr right) {
  assert(left.arity() == right.arity());
  auto node = std::make_shared<Node>();
  node->op = RaOp::kDiff;
  node->arity = left.arity();
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return RaExpr(std::move(node));
}

RaExpr RaExpr::ConstRel(Relation relation) {
  auto node = std::make_shared<Node>();
  node->op = RaOp::kConstRel;
  node->arity = relation.arity();
  node->const_relation = std::move(relation);
  return RaExpr(std::move(node));
}

RaExpr RaExpr::Join(RaExpr left, RaExpr right,
                    const std::vector<std::pair<int, int>>& on) {
  int offset = left.arity();
  std::vector<SelectAtom> atoms;
  atoms.reserve(on.size());
  for (const auto& [l, r] : on) {
    atoms.push_back(SelectAtom::Eq(ColOrConst::Col(l),
                                   ColOrConst::Col(offset + r)));
  }
  return Select(Product(std::move(left), std::move(right)), std::move(atoms));
}

namespace {
std::string ColOrConstToString(const ColOrConst& o) {
  return o.is_column ? "#" + std::to_string(o.column)
                     : std::to_string(o.constant);
}
}  // namespace

std::string RaExpr::ToString() const {
  switch (op()) {
    case RaOp::kRel:
      return "R" + std::to_string(rel_index());
    case RaOp::kConstRel:
      return "{const:" + std::to_string(const_relation().size()) + "}";
    case RaOp::kProject: {
      std::string cols;
      for (size_t i = 0; i < outputs().size(); ++i) {
        if (i > 0) cols += ",";
        cols += ColOrConstToString(outputs()[i]);
      }
      return "pi[" + cols + "](" + input().ToString() + ")";
    }
    case RaOp::kSelect: {
      std::string conds;
      for (size_t i = 0; i < atoms().size(); ++i) {
        if (i > 0) conds += ",";
        conds += ColOrConstToString(atoms()[i].lhs) +
                 (atoms()[i].is_equality ? "=" : "!=") +
                 ColOrConstToString(atoms()[i].rhs);
      }
      return "sigma[" + conds + "](" + input().ToString() + ")";
    }
    case RaOp::kProduct:
      return "(" + left().ToString() + " x " + right().ToString() + ")";
    case RaOp::kUnion:
      return "(" + left().ToString() + " U " + right().ToString() + ")";
    case RaOp::kDiff:
      return "(" + left().ToString() + " - " + right().ToString() + ")";
  }
  return "?";
}

}  // namespace pw
