// Evaluation of relational algebra on complete information databases.

#ifndef PW_RA_EVAL_H_
#define PW_RA_EVAL_H_

#include "core/instance.h"
#include "ra/expr.h"

namespace pw {

/// Evaluates `expr` on `input`. Referenced relations must exist with the
/// declared arity.
Relation Eval(const RaExpr& expr, const Instance& input);

/// Evaluates every expression of `query`, producing one output relation per
/// expression.
Instance EvalQuery(const RaQuery& query, const Instance& input);

}  // namespace pw

#endif  // PW_RA_EVAL_H_
