// Relational algebra expressions.
//
// Positional algebra over the operators the paper uses (Section 2.1):
// project, (positive) select, product, union, renaming — all subsumed by a
// generalized projection — plus difference, which upgrades the positive
// existential fragment to full first order queries. Natural join is
// select-over-product. A constant relation operator covers queries whose
// heads emit constants (e.g. "... AND x = 0" in Theorem 4.2(2)).
//
// Expressions are immutable trees with shared subexpressions; `Query` is a
// vector of expressions, one per output relation (queries of arity
// (a1..an) -> (b1..bm)).

#ifndef PW_RA_EXPR_H_
#define PW_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/term.h"

namespace pw {

/// Operator tags.
enum class RaOp {
  kRel,       // input relation by index
  kProject,   // generalized projection (reorder / duplicate / constants)
  kSelect,    // conjunction of =/!= atoms over columns and constants
  kProduct,   // cartesian product
  kUnion,     // set union (same arity)
  kDiff,      // set difference (same arity) — leaves positive existential
  kConstRel,  // a fixed constant relation
};

/// One side of a select atom, or one output column of a projection: either a
/// column of the input or a constant.
struct ColOrConst {
  bool is_column = true;
  int column = 0;
  ConstId constant = 0;

  static ColOrConst Col(int c) { return {true, c, 0}; }
  static ColOrConst Const(ConstId k) { return {false, 0, k}; }

  friend bool operator==(const ColOrConst&, const ColOrConst&) = default;
};

/// A select atom `lhs (=|!=) rhs`.
struct SelectAtom {
  ColOrConst lhs;
  ColOrConst rhs;
  bool is_equality = true;

  static SelectAtom Eq(ColOrConst l, ColOrConst r) { return {l, r, true}; }
  static SelectAtom Neq(ColOrConst l, ColOrConst r) { return {l, r, false}; }

  friend bool operator==(const SelectAtom&, const SelectAtom&) = default;
};

/// An immutable relational algebra expression. Copy is O(1).
class RaExpr {
 public:
  /// Reference to input relation `index`, which must have arity `arity`.
  static RaExpr Rel(size_t index, int arity);

  /// Generalized projection; output column i is `outputs[i]` (an input
  /// column or a constant). Subsumes classical projection and renaming.
  static RaExpr Project(RaExpr input, std::vector<ColOrConst> outputs);

  /// Classical projection onto the given input columns.
  static RaExpr ProjectCols(RaExpr input, const std::vector<int>& columns);

  /// Selection by a conjunction of atoms.
  static RaExpr Select(RaExpr input, std::vector<SelectAtom> atoms);

  static RaExpr Product(RaExpr left, RaExpr right);
  static RaExpr Union(RaExpr left, RaExpr right);
  static RaExpr Diff(RaExpr left, RaExpr right);

  /// The fixed relation {facts}.
  static RaExpr ConstRel(Relation relation);

  /// Equi-join: product of `left` and `right` followed by selection of
  /// `left.col == right.col` for every pair in `on` (right columns are
  /// indexed from 0 in `right`).
  static RaExpr Join(RaExpr left, RaExpr right,
                     const std::vector<std::pair<int, int>>& on);

  RaOp op() const { return node_->op; }
  int arity() const { return node_->arity; }

  // Accessors; meaningful per-op (see RaOp).
  size_t rel_index() const { return node_->rel_index; }
  const std::vector<ColOrConst>& outputs() const { return node_->outputs; }
  const std::vector<SelectAtom>& atoms() const { return node_->atoms; }
  const RaExpr& left() const { return node_->children[0]; }
  const RaExpr& right() const { return node_->children[1]; }
  const RaExpr& input() const { return node_->children[0]; }
  const Relation& const_relation() const { return node_->const_relation; }

  std::string ToString() const;

 private:
  struct Node {
    RaOp op;
    int arity = 0;
    size_t rel_index = 0;
    std::vector<ColOrConst> outputs;
    std::vector<SelectAtom> atoms;
    std::vector<RaExpr> children;
    Relation const_relation;
  };

  explicit RaExpr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// A query with one output relation per expression.
using RaQuery = std::vector<RaExpr>;

}  // namespace pw

#endif  // PW_RA_EXPR_H_
