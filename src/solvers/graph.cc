#include "solvers/graph.h"

namespace pw {

void Graph::AddEdge(int a, int b) { edges_.emplace_back(a, b); }

std::vector<std::vector<int>> Graph::AdjacencyLists() const {
  std::vector<std::vector<int>> adj(num_nodes_);
  for (const auto& [a, b] : edges_) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  return adj;
}

Graph Graph::PaperFig4a() {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(2, 4);
  return g;
}

std::string Graph::ToString() const {
  std::string out =
      "graph(" + std::to_string(num_nodes_) + " nodes): ";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(edges_[i].first) + "-" +
           std::to_string(edges_[i].second);
  }
  return out;
}

}  // namespace pw
