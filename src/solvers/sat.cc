#include "solvers/sat.h"

namespace pw {

namespace {

enum class Value : int8_t { kUnset, kTrue, kFalse };

struct SatState {
  const ClausalFormula* formula;
  std::vector<Value> values;
};

bool LitTrue(const Literal& lit, const std::vector<Value>& values) {
  return values[lit.var] == (lit.negated ? Value::kFalse : Value::kTrue);
}

bool LitFalse(const Literal& lit, const std::vector<Value>& values) {
  return values[lit.var] == (lit.negated ? Value::kTrue : Value::kFalse);
}

/// Unit propagation to fixpoint. Returns false on conflict. Appends every
/// assignment made to `trail`.
bool Propagate(SatState& state, std::vector<int>& trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : state.formula->clauses) {
      int unset_count = 0;
      const Literal* unit = nullptr;
      bool sat = false;
      for (const Literal& lit : clause) {
        if (LitTrue(lit, state.values)) {
          sat = true;
          break;
        }
        if (!LitFalse(lit, state.values)) {
          ++unset_count;
          unit = &lit;
        }
      }
      if (sat) continue;
      if (unset_count == 0) return false;  // conflict
      if (unset_count == 1) {
        state.values[unit->var] = unit->negated ? Value::kFalse : Value::kTrue;
        trail.push_back(unit->var);
        changed = true;
      }
    }
  }
  return true;
}

bool Dpll(SatState& state) {
  std::vector<int> trail;
  if (!Propagate(state, trail)) {
    for (int v : trail) state.values[v] = Value::kUnset;
    return false;
  }
  int branch = -1;
  for (size_t v = 0; v < state.values.size(); ++v) {
    if (state.values[v] == Value::kUnset) {
      branch = static_cast<int>(v);
      break;
    }
  }
  if (branch == -1) return true;  // all assigned, no conflict
  for (Value val : {Value::kTrue, Value::kFalse}) {
    state.values[branch] = val;
    if (Dpll(state)) return true;
    state.values[branch] = Value::kUnset;
  }
  for (int v : trail) state.values[v] = Value::kUnset;
  return false;
}

}  // namespace

std::optional<std::vector<bool>> SolveSat(const ClausalFormula& formula) {
  SatState state;
  state.formula = &formula;
  state.values.assign(formula.num_vars, Value::kUnset);
  if (!Dpll(state)) return std::nullopt;
  std::vector<bool> assignment(formula.num_vars, false);
  for (int v = 0; v < formula.num_vars; ++v) {
    assignment[v] = state.values[v] == Value::kTrue;
  }
  return assignment;
}

bool IsSatisfiable(const ClausalFormula& formula) {
  return SolveSat(formula).has_value();
}

}  // namespace pw
