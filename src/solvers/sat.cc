#include "solvers/sat.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace pw {

namespace {

// ---------------------------------------------------------------------------
// Seed recursive DPLL, kept verbatim as the differential baseline behind
// SatOptions{.use_cdcl = false}. Known hazards this file's CDCL core fixes:
// Propagate re-scans every clause per pass (quadratic on long implication
// chains) and Dpll recurses one stack frame per branched variable (stack
// overflow on large reduction-generated instances).
// ---------------------------------------------------------------------------

enum class Value : int8_t { kUnset, kTrue, kFalse };

struct SatState {
  const ClausalFormula* formula;
  std::vector<Value> values;
};

bool LitTrue(const Literal& lit, const std::vector<Value>& values) {
  return values[lit.var] == (lit.negated ? Value::kFalse : Value::kTrue);
}

bool LitFalse(const Literal& lit, const std::vector<Value>& values) {
  return values[lit.var] == (lit.negated ? Value::kTrue : Value::kFalse);
}

/// Unit propagation to fixpoint. Returns false on conflict. Appends every
/// assignment made to `trail`.
bool Propagate(SatState& state, std::vector<int>& trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : state.formula->clauses) {
      int unset_count = 0;
      const Literal* unit = nullptr;
      bool sat = false;
      for (const Literal& lit : clause) {
        if (LitTrue(lit, state.values)) {
          sat = true;
          break;
        }
        if (!LitFalse(lit, state.values)) {
          ++unset_count;
          unit = &lit;
        }
      }
      if (sat) continue;
      if (unset_count == 0) return false;  // conflict
      if (unset_count == 1) {
        state.values[unit->var] = unit->negated ? Value::kFalse : Value::kTrue;
        trail.push_back(unit->var);
        changed = true;
      }
    }
  }
  return true;
}

bool Dpll(SatState& state) {
  std::vector<int> trail;
  if (!Propagate(state, trail)) {
    for (int v : trail) state.values[v] = Value::kUnset;
    return false;
  }
  int branch = -1;
  for (size_t v = 0; v < state.values.size(); ++v) {
    if (state.values[v] == Value::kUnset) {
      branch = static_cast<int>(v);
      break;
    }
  }
  if (branch == -1) return true;  // all assigned, no conflict
  for (Value val : {Value::kTrue, Value::kFalse}) {
    state.values[branch] = val;
    if (Dpll(state)) return true;
    state.values[branch] = Value::kUnset;
  }
  for (int v : trail) state.values[v] = Value::kUnset;
  return false;
}

// ---------------------------------------------------------------------------
// CDCL core.
// ---------------------------------------------------------------------------

// Literals are encoded as 2 * var + (negated ? 1 : 0) so a literal and its
// negation differ in the lowest bit.
inline int EncodeLit(int var, bool negated) { return 2 * var + (negated ? 1 : 0); }
inline int EncodeLit(const Literal& lit) { return EncodeLit(lit.var, lit.negated); }
inline int VarOf(int lit) { return lit >> 1; }
inline int NegLit(int lit) { return lit ^ 1; }
inline Literal DecodeLit(int lit) { return {lit >> 1, (lit & 1) != 0}; }

// Assignment values; chosen so LitValue is an xor away from the var value.
constexpr int8_t kTrue = 0;
constexpr int8_t kFalse = 1;
constexpr int8_t kUnassigned = 2;

constexpr int kNoClause = -1;

/// The i-th element (0-based) of the Luby restart sequence 1,1,2,1,1,2,4,...
int64_t Luby(int64_t i) {
  int64_t size = 1;
  int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return int64_t{1} << seq;
}

/// Indexed binary max-heap over variable activities: the VSIDS pick-branch
/// order. Variables re-enter on backtrack, sift up on activity bumps.
class VarHeap {
 public:
  void Grow(int num_vars, const std::vector<double>& activity) {
    while (static_cast<int>(pos_.size()) < num_vars) {
      pos_.push_back(-1);
      Insert(static_cast<int>(pos_.size()) - 1, activity);
    }
  }

  bool Contains(int var) const { return pos_[var] >= 0; }
  bool Empty() const { return heap_.empty(); }

  void Insert(int var, const std::vector<double>& activity) {
    if (Contains(var)) return;
    pos_[var] = static_cast<int>(heap_.size());
    heap_.push_back(var);
    SiftUp(pos_[var], activity);
  }

  int PopMax(const std::vector<double>& activity) {
    int top = heap_[0];
    int last = heap_.back();
    heap_.pop_back();
    pos_[top] = -1;
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last] = 0;
      SiftDown(0, activity);
    }
    return top;
  }

  void Increased(int var, const std::vector<double>& activity) {
    if (Contains(var)) SiftUp(pos_[var], activity);
  }

 private:
  void SiftUp(int i, const std::vector<double>& activity) {
    int var = heap_[i];
    while (i > 0) {
      int parent = (i - 1) / 2;
      if (activity[heap_[parent]] >= activity[var]) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = var;
    pos_[var] = i;
  }

  void SiftDown(int i, const std::vector<double>& activity) {
    int var = heap_[i];
    for (;;) {
      int child = 2 * i + 1;
      if (child >= static_cast<int>(heap_.size())) break;
      if (child + 1 < static_cast<int>(heap_.size()) &&
          activity[heap_[child + 1]] > activity[heap_[child]]) {
        ++child;
      }
      if (activity[heap_[child]] <= activity[var]) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = var;
    pos_[var] = i;
  }

  std::vector<int> heap_;
  std::vector<int> pos_;
};

/// PW_CHECK_CERTIFICATES=1 makes every solver answer re-verify its own
/// certificate through the independent checker before returning (the
/// sanitizer CI lane sets it), turning a solver bug into an immediate abort
/// instead of a wrong verdict downstream.
bool CertificateCheckingForced() {
  static const bool forced = [] {
    const char* value = std::getenv("PW_CHECK_CERTIFICATES");
    return value != nullptr && *value != '\0' && *value != '0';
  }();
  return forced;
}

[[noreturn]] void DieSelfCheck(const char* what, const std::string& detail) {
  std::fprintf(stderr, "SatSolver self-check failed: %s%s%s\n", what,
               detail.empty() ? "" : ": ", detail.c_str());
  std::abort();
}

}  // namespace

struct SatSolver::Impl {
  struct Cls {
    std::vector<int> lits;  // lits[0] and lits[1] are watched
    bool learned = false;
  };

  struct Watch {
    int clause = kNoClause;
    int blocker = 0;  // a literal whose truth satisfies the clause
  };

  explicit Impl(SatOptions opts) : options(opts) {}

  SatOptions options;
  int num_vars = 0;
  bool ok = true;  // false once an empty clause / root conflict is derived

  std::vector<Cls> clauses;
  std::vector<Clause> originals;  // pristine input clauses, for verification
  std::vector<std::vector<Watch>> watches;  // literal -> watching clauses

  std::vector<int8_t> assigns;  // per var: kTrue / kFalse / kUnassigned
  std::vector<int> levels;      // per var: decision level of the assignment
  std::vector<int> reasons;     // per var: antecedent clause or kNoClause
  std::vector<int8_t> phase;    // per var: saved polarity (kTrue / kFalse)
  std::vector<int> trail;       // assigned literals in order
  std::vector<size_t> trail_lim;
  size_t qhead = 0;

  std::vector<double> activity;
  double var_inc = 1.0;
  VarHeap order;
  std::vector<int8_t> seen;  // analyze scratch

  DratProof log;  // every learned clause, in derivation order
  SatStats stats;

  int CurrentLevel() const { return static_cast<int>(trail_lim.size()); }

  int8_t LitValue(int lit) const {
    int8_t value = assigns[VarOf(lit)];
    return value == kUnassigned ? kUnassigned
                                : static_cast<int8_t>(value ^ (lit & 1));
  }

  void EnsureVars(int n) {
    if (n <= num_vars) return;
    assigns.resize(n, kUnassigned);
    levels.resize(n, 0);
    reasons.resize(n, kNoClause);
    phase.resize(n, kFalse);
    activity.resize(n, 0.0);
    seen.resize(n, 0);
    watches.resize(2 * static_cast<size_t>(n));
    num_vars = n;
    order.Grow(n, activity);
  }

  void Enqueue(int lit, int reason) {
    int var = VarOf(lit);
    assigns[var] = static_cast<int8_t>(lit & 1);
    levels[var] = CurrentLevel();
    reasons[var] = reason;
    trail.push_back(lit);
  }

  void CancelUntil(int level) {
    if (CurrentLevel() <= level) return;
    for (int i = static_cast<int>(trail.size()) - 1;
         i >= static_cast<int>(trail_lim[level]); --i) {
      int var = VarOf(trail[i]);
      phase[var] = assigns[var];
      assigns[var] = kUnassigned;
      reasons[var] = kNoClause;
      order.Insert(var, activity);
    }
    trail.resize(trail_lim[level]);
    trail_lim.resize(level);
    qhead = trail.size();
  }

  void BumpVar(int var) {
    activity[var] += var_inc;
    if (activity[var] > 1e100) {
      for (double& a : activity) a *= 1e-100;
      var_inc *= 1e-100;
    }
    order.Increased(var, activity);
  }

  void DecayActivity() { var_inc *= 1.0 / options.var_decay; }

  void AddClauseAtRoot(const Clause& input) {
    originals.push_back(input);
    for (const Literal& lit : input) EnsureVars(lit.var + 1);
    if (!ok) return;
    std::vector<int> lits;
    lits.reserve(input.size());
    for (const Literal& lit : input) lits.push_back(EncodeLit(lit));
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    std::vector<int> kept;
    kept.reserve(lits.size());
    bool satisfied = false;
    for (size_t i = 0; i < lits.size(); ++i) {
      if (i + 1 < lits.size() && lits[i + 1] == NegLit(lits[i])) {
        satisfied = true;  // tautological clause: x and not-x
        break;
      }
      int8_t value = LitValue(lits[i]);
      if (value == kTrue) {
        satisfied = true;  // already satisfied at the root level
        break;
      }
      if (value != kFalse) kept.push_back(lits[i]);  // drop root-false lits
    }
    if (satisfied) return;
    if (kept.empty()) {
      ok = false;
      return;
    }
    if (kept.size() == 1) {
      Enqueue(kept[0], kNoClause);  // root-level unit; propagated at Solve
      return;
    }
    int id = static_cast<int>(clauses.size());
    clauses.push_back({std::move(kept), false});
    const std::vector<int>& stored = clauses[id].lits;
    watches[stored[0]].push_back({id, stored[1]});
    watches[stored[1]].push_back({id, stored[0]});
  }

  /// Two-watched-literal propagation to fixpoint. Returns the conflicting
  /// clause id, or kNoClause.
  int PropagateWatched() {
    while (qhead < trail.size()) {
      int p = trail[qhead++];
      int fp = NegLit(p);  // literal that just became false
      std::vector<Watch>& ws = watches[fp];
      size_t i = 0;
      size_t j = 0;
      while (i < ws.size()) {
        Watch w = ws[i++];
        if (LitValue(w.blocker) == kTrue) {
          ws[j++] = w;
          continue;
        }
        Cls& c = clauses[w.clause];
        if (c.lits[0] == fp) std::swap(c.lits[0], c.lits[1]);
        int first = c.lits[0];
        Watch moved{w.clause, first};
        if (first != w.blocker && LitValue(first) == kTrue) {
          ws[j++] = moved;
          continue;
        }
        bool found = false;
        for (size_t k = 2; k < c.lits.size(); ++k) {
          if (LitValue(c.lits[k]) != kFalse) {
            std::swap(c.lits[1], c.lits[k]);
            watches[c.lits[1]].push_back(moved);
            found = true;
            break;
          }
        }
        if (found) continue;  // watch moved to another literal
        ws[j++] = moved;
        if (LitValue(first) == kFalse) {  // conflict
          while (i < ws.size()) ws[j++] = ws[i++];
          ws.resize(j);
          qhead = trail.size();
          return w.clause;
        }
        ++stats.propagations;
        Enqueue(first, w.clause);
      }
      ws.resize(j);
    }
    return kNoClause;
  }

  /// 1UIP conflict analysis. Fills `learnt` (learnt[0] is the asserting
  /// literal, learnt[1] a literal from the backjump level when present) and
  /// returns the backjump level.
  int Analyze(int confl, std::vector<int>& learnt) {
    learnt.assign(1, 0);  // slot for the asserting literal
    int counter = 0;
    int p = -1;
    int index = static_cast<int>(trail.size()) - 1;
    for (;;) {
      const Cls& c = clauses[confl];
      for (size_t j = (p == -1 ? 0 : 1); j < c.lits.size(); ++j) {
        int q = c.lits[j];
        int var = VarOf(q);
        if (seen[var] == 0 && levels[var] > 0) {
          seen[var] = 1;
          BumpVar(var);
          if (levels[var] >= CurrentLevel()) {
            ++counter;
          } else {
            learnt.push_back(q);
          }
        }
      }
      while (seen[VarOf(trail[index])] == 0) --index;
      p = trail[index];
      seen[VarOf(p)] = 0;
      --index;
      if (--counter == 0) break;
      confl = reasons[VarOf(p)];
    }
    learnt[0] = NegLit(p);
    int backjump = 0;
    if (learnt.size() > 1) {
      size_t max_i = 1;
      for (size_t i = 2; i < learnt.size(); ++i) {
        if (levels[VarOf(learnt[i])] > levels[VarOf(learnt[max_i])]) max_i = i;
      }
      std::swap(learnt[1], learnt[max_i]);
      backjump = levels[VarOf(learnt[1])];
    }
    for (int lit : learnt) seen[VarOf(lit)] = 0;
    return backjump;
  }

  /// Attaches a learnt clause after backjumping, records it in the proof
  /// log, and enqueues its asserting literal.
  void AttachLearnt(const std::vector<int>& learnt) {
    ++stats.learned_clauses;
    stats.learned_literals += static_cast<int64_t>(learnt.size());
    if (options.log_proof) {
      Clause logged;
      logged.reserve(learnt.size());
      for (int lit : learnt) logged.push_back(DecodeLit(lit));
      log.added.push_back(std::move(logged));
    }
    if (learnt.size() == 1) {
      Enqueue(learnt[0], kNoClause);
      return;
    }
    int id = static_cast<int>(clauses.size());
    clauses.push_back({learnt, true});
    watches[learnt[0]].push_back({id, learnt[1]});
    watches[learnt[1]].push_back({id, learnt[0]});
    Enqueue(learnt[0], id);
  }

  /// Failed-assumption core: `p` is an assumption literal found false under
  /// the earlier assumption levels. Walks the reason cone back to the
  /// assumption decisions involved.
  std::vector<Literal> AnalyzeFinal(int p) {
    std::vector<Literal> core{DecodeLit(p)};
    if (CurrentLevel() == 0) return core;
    seen[VarOf(p)] = 1;
    for (int i = static_cast<int>(trail.size()) - 1;
         i >= static_cast<int>(trail_lim[0]); --i) {
      int var = VarOf(trail[i]);
      if (seen[var] == 0) continue;
      if (reasons[var] == kNoClause) {
        // Decisions below the assumption prefix are assumptions themselves.
        core.push_back(DecodeLit(trail[i]));
      } else {
        const Cls& c = clauses[reasons[var]];
        for (size_t j = 1; j < c.lits.size(); ++j) {
          if (levels[VarOf(c.lits[j])] > 0) seen[VarOf(c.lits[j])] = 1;
        }
      }
      seen[var] = 0;
    }
    seen[VarOf(p)] = 0;
    return core;
  }

  int PickBranchLit() {
    while (!order.Empty()) {
      int var = order.PopMax(activity);
      if (assigns[var] == kUnassigned) {
        return EncodeLit(var, phase[var] == kFalse);
      }
    }
    return -1;
  }

  ClausalFormula OriginalFormula() const {
    ClausalFormula formula;
    formula.num_vars = num_vars;
    formula.clauses = originals;
    return formula;
  }

  /// Debug (and PW_CHECK_CERTIFICATES-forced) verification of a SAT answer:
  /// every input clause and every assumption must hold under the model.
  void VerifySatAnswer(const SatResult& result,
                       const std::vector<Literal>& assumptions) const {
#ifdef NDEBUG
    if (!CertificateCheckingForced()) return;
#endif
    for (size_t i = 0; i < originals.size(); ++i) {
      bool satisfied = false;
      for (const Literal& lit : originals[i]) {
        if (result.model[lit.var] != lit.negated) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        DieSelfCheck("model falsifies input clause", std::to_string(i));
      }
    }
    for (const Literal& lit : assumptions) {
      if (result.model[lit.var] == lit.negated) {
        DieSelfCheck("model violates assumption", std::to_string(lit.var));
      }
    }
  }

  SatResult SatAnswer(const std::vector<Literal>& assumptions) {
    SatResult result;
    result.sat = true;
    result.model.resize(num_vars);
    for (int v = 0; v < num_vars; ++v) result.model[v] = assigns[v] == kTrue;
    result.stats = stats;
    CancelUntil(0);
    VerifySatAnswer(result, assumptions);
    return result;
  }

  SatResult UnsatAnswer(std::vector<Literal> core,
                        const std::vector<Literal>& assumptions) {
    CancelUntil(0);
    SatResult result;
    result.sat = false;
    result.core = std::move(core);
    result.stats = stats;
    if (options.log_proof) {
      result.proof.added = log.added;
      Clause final_clause;
      final_clause.reserve(result.core.size());
      for (const Literal& lit : result.core) {
        final_clause.push_back({lit.var, !lit.negated});
      }
      result.proof.added.push_back(std::move(final_clause));
      if (CertificateCheckingForced()) {
        std::string error;
        if (!CheckUnsatProof(OriginalFormula(), assumptions, result.proof,
                             &error)) {
          DieSelfCheck("UNSAT proof rejected by the independent checker",
                       error);
        }
      }
    }
    return result;
  }

  SatResult SolveCdcl(const std::vector<Literal>& assumptions) {
    stats = {};
    for (const Literal& lit : assumptions) EnsureVars(lit.var + 1);
    CancelUntil(0);
    if (!ok) return UnsatAnswer({}, assumptions);
    int64_t restart_run = 0;
    int64_t conflicts_in_run = 0;
    int64_t budget = Luby(restart_run) * options.luby_base;
    std::vector<int> learnt;
    for (;;) {
      int confl = PropagateWatched();
      if (confl != kNoClause) {
        ++stats.conflicts;
        ++conflicts_in_run;
        if (CurrentLevel() == 0) {
          ok = false;  // refuted outright: no assumption involved
          return UnsatAnswer({}, assumptions);
        }
        int backjump = Analyze(confl, learnt);
        CancelUntil(backjump);
        AttachLearnt(learnt);
        DecayActivity();
        if (conflicts_in_run >= budget) {
          ++stats.restarts;
          ++restart_run;
          conflicts_in_run = 0;
          budget = Luby(restart_run) * options.luby_base;
          CancelUntil(0);
        }
        continue;
      }
      // Extend the assumption prefix before real decisions.
      bool enqueued_assumption = false;
      while (CurrentLevel() < static_cast<int>(assumptions.size())) {
        int p = EncodeLit(assumptions[CurrentLevel()]);
        int8_t value = LitValue(p);
        if (value == kTrue) {
          trail_lim.push_back(trail.size());  // dummy level, already implied
        } else if (value == kFalse) {
          return UnsatAnswer(AnalyzeFinal(p), assumptions);
        } else {
          trail_lim.push_back(trail.size());
          Enqueue(p, kNoClause);
          enqueued_assumption = true;
          break;
        }
      }
      if (enqueued_assumption) continue;
      int next = PickBranchLit();
      if (next == -1) return SatAnswer(assumptions);
      ++stats.decisions;
      trail_lim.push_back(trail.size());
      Enqueue(next, kNoClause);
    }
  }

  SatResult SolveDpllBaseline(const std::vector<Literal>& assumptions) {
    stats = {};
    for (const Literal& lit : assumptions) EnsureVars(lit.var + 1);
    ClausalFormula formula = OriginalFormula();
    SatState state;
    state.formula = &formula;
    state.values.assign(num_vars, Value::kUnset);
    bool consistent = true;
    for (const Literal& lit : assumptions) {
      Value want = lit.negated ? Value::kFalse : Value::kTrue;
      if (state.values[lit.var] == Value::kUnset) {
        state.values[lit.var] = want;
      } else if (state.values[lit.var] != want) {
        consistent = false;
        break;
      }
    }
    SatResult result;
    if (consistent && Dpll(state)) {
      result.sat = true;
      result.model.resize(num_vars);
      for (int v = 0; v < num_vars; ++v) {
        result.model[v] = state.values[v] == Value::kTrue;
      }
      VerifySatAnswer(result, assumptions);
    } else {
      result.sat = false;
      result.core = assumptions;  // the baseline does not minimize cores
    }
    return result;
  }
};

SatSolver::SatSolver(SatOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
SatSolver::~SatSolver() = default;
SatSolver::SatSolver(SatSolver&&) noexcept = default;
SatSolver& SatSolver::operator=(SatSolver&&) noexcept = default;

int SatSolver::NewVar() {
  impl_->EnsureVars(impl_->num_vars + 1);
  return impl_->num_vars - 1;
}

void SatSolver::EnsureVars(int num_vars) { impl_->EnsureVars(num_vars); }

int SatSolver::num_vars() const { return impl_->num_vars; }

void SatSolver::AddClause(const Clause& clause) {
  impl_->AddClauseAtRoot(clause);
}

void SatSolver::AddFormula(const ClausalFormula& formula) {
  impl_->EnsureVars(formula.num_vars);
  for (const Clause& clause : formula.clauses) impl_->AddClauseAtRoot(clause);
}

SatResult SatSolver::SolveUnderAssumptions(
    const std::vector<Literal>& assumptions) {
  return impl_->options.use_cdcl ? impl_->SolveCdcl(assumptions)
                                 : impl_->SolveDpllBaseline(assumptions);
}

SatResult SolveCnf(const ClausalFormula& formula, const SatOptions& options) {
  SatSolver solver(options);
  solver.AddFormula(formula);
  return solver.Solve();
}

SatResult SolveCnfUnderAssumptions(const ClausalFormula& formula,
                                   const std::vector<Literal>& assumptions,
                                   const SatOptions& options) {
  SatSolver solver(options);
  solver.AddFormula(formula);
  return solver.SolveUnderAssumptions(assumptions);
}

std::optional<std::vector<bool>> SolveSat(const ClausalFormula& formula) {
  SatResult result = SolveCnf(formula);
  if (!result.sat) return std::nullopt;
  result.model.resize(formula.num_vars);
  return std::move(result.model);
}

bool IsSatisfiable(const ClausalFormula& formula) {
  return SolveCnf(formula).sat;
}

}  // namespace pw
