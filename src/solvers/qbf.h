// The forall-exists 3CNF problem (Stockmeyer): Pi-2-p-complete reference
// oracle for the containment lower bounds of Theorem 4.2.
//
// The default engine is a CEGAR-style counterexample search over the
// universal assignments: an incremental abstraction solver proposes
// candidate universal assignments, the main solver checks each one under
// assumptions, and every found witness is generalized into a refinement
// clause that excludes all universal assignments the witness repairs. When a
// counterexample is found it ships with a checkable UNSAT certificate
// (solvers/proof.h) for the restricted formula. The seed 2^|X| enumeration
// survives behind QbfOptions{.use_cegar = false} as the differential
// baseline — now guarded against the |X| >= 64 shift overflow instead of
// silently invoking undefined behavior.

#ifndef PW_SOLVERS_QBF_H_
#define PW_SOLVERS_QBF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "solvers/proof.h"
#include "solvers/sat.h"

namespace pw {

struct QbfOptions {
  /// false enumerates all 2^|X| universal assignments (the seed baseline;
  /// rejects instances with 64 or more universals).
  bool use_cegar = true;
  /// Options for the underlying SAT engine(s).
  SatOptions sat;
};

struct QbfResult {
  /// false when the instance was rejected outright (malformed quantifier
  /// split, or an oversized instance on the enumeration baseline); `error`
  /// then says why and no other field is meaningful.
  bool ok = true;
  std::string error;

  /// The verdict: does every universal assignment admit a satisfying
  /// existential extension?
  bool holds = false;
  /// When !holds: a universal assignment with no satisfying extension.
  std::optional<std::vector<bool>> counterexample;
  /// When !holds (CEGAR path): an UNSAT proof for the formula under the
  /// counterexample, checkable via CheckUnsatProof with the universal
  /// literals as assumptions.
  SatCertificate certificate;

  /// Search effort: candidate universal assignments tried, and refinement
  /// clauses added (CEGAR) — candidates equals the enumerated prefix on the
  /// brute-force baseline.
  int64_t candidates = 0;
  int64_t refinements = 0;
};

/// Full result with certificate and stats.
QbfResult SolveForallExistsCertified(const ForallExistsCnf& instance,
                                     const QbfOptions& options = {});

/// Decides: for every assignment of the universal variables, is there an
/// assignment of the existential variables satisfying the CNF?
bool SolveForallExists(const ForallExistsCnf& instance);

/// If the instance is false, returns a universal assignment with no
/// satisfying existential extension.
std::optional<std::vector<bool>> FindForallCounterexample(
    const ForallExistsCnf& instance);

}  // namespace pw

#endif  // PW_SOLVERS_QBF_H_
