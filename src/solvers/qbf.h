// The forall-exists 3CNF problem (Stockmeyer): Pi-2-p-complete reference
// oracle for the containment lower bounds of Theorem 4.2.

#ifndef PW_SOLVERS_QBF_H_
#define PW_SOLVERS_QBF_H_

#include <optional>
#include <vector>

#include "solvers/cnf.h"

namespace pw {

/// Decides: for every assignment of the universal variables, is there an
/// assignment of the existential variables satisfying the CNF?
/// Enumerates the 2^|X| universal assignments and calls DPLL on each
/// restricted formula.
bool SolveForallExists(const ForallExistsCnf& instance);

/// If the instance is false, returns a universal assignment with no
/// satisfying existential extension.
std::optional<std::vector<bool>> FindForallCounterexample(
    const ForallExistsCnf& instance);

}  // namespace pw

#endif  // PW_SOLVERS_QBF_H_
