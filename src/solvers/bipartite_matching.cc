#include "solvers/bipartite_matching.h"

#include <limits>
#include <queue>

namespace pw {

namespace {

constexpr int kInf = std::numeric_limits<int>::max();

/// Hopcroft–Karp BFS phase: layers left nodes by shortest alternating path
/// from a free left node. Returns true if some free right node is reachable.
bool Bfs(const BipartiteGraph& g, const std::vector<int>& match_left,
         const std::vector<int>& match_right, std::vector<int>& dist) {
  std::queue<int> q;
  for (int l = 0; l < g.num_left(); ++l) {
    if (match_left[l] == -1) {
      dist[l] = 0;
      q.push(l);
    } else {
      dist[l] = kInf;
    }
  }
  bool found = false;
  while (!q.empty()) {
    int l = q.front();
    q.pop();
    for (int r : g.Neighbors(l)) {
      int next = match_right[r];
      if (next == -1) {
        found = true;
      } else if (dist[next] == kInf) {
        dist[next] = dist[l] + 1;
        q.push(next);
      }
    }
  }
  return found;
}

bool Dfs(const BipartiteGraph& g, int l, std::vector<int>& match_left,
         std::vector<int>& match_right, std::vector<int>& dist) {
  for (int r : g.Neighbors(l)) {
    int next = match_right[r];
    if (next == -1 || (dist[next] == dist[l] + 1 &&
                       Dfs(g, next, match_left, match_right, dist))) {
      match_left[l] = r;
      match_right[r] = l;
      return true;
    }
  }
  dist[l] = kInf;
  return false;
}

}  // namespace

MatchingResult MaxBipartiteMatching(const BipartiteGraph& graph) {
  MatchingResult result;
  result.match_left.assign(graph.num_left(), -1);
  result.match_right.assign(graph.num_right(), -1);
  std::vector<int> dist(graph.num_left());
  while (Bfs(graph, result.match_left, result.match_right, dist)) {
    for (int l = 0; l < graph.num_left(); ++l) {
      if (result.match_left[l] == -1 &&
          Dfs(graph, l, result.match_left, result.match_right, dist)) {
        ++result.size;
      }
    }
  }
  return result;
}

}  // namespace pw
