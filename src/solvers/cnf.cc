#include "solvers/cnf.h"

namespace pw {

bool ClausalFormula::IsThree() const {
  for (const Clause& c : clauses) {
    if (c.size() != 3) return false;
  }
  return true;
}

bool ClausalFormula::EvalCnf(const std::vector<bool>& assignment) const {
  for (const Clause& c : clauses) {
    bool sat = false;
    for (const Literal& lit : c) {
      if (assignment[lit.var] != lit.negated) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

bool ClausalFormula::EvalDnf(const std::vector<bool>& assignment) const {
  for (const Clause& c : clauses) {
    bool sat = true;
    for (const Literal& lit : c) {
      if (assignment[lit.var] == lit.negated) {
        sat = false;
        break;
      }
    }
    if (sat) return true;
  }
  return false;
}

std::string ClausalFormula::ToString(bool as_cnf) const {
  std::string inner = as_cnf ? " v " : " ^ ";
  std::string outer = as_cnf ? " ^ " : " v ";
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += outer;
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += inner;
      if (clauses[i][j].negated) out += "-";
      out += "x" + std::to_string(clauses[i][j].var + 1);
    }
    out += ")";
  }
  return out;
}

ClausalFormula PaperFig5Cnf() {
  // Variables x1..x5 are 0..4 here.
  ClausalFormula f;
  f.num_vars = 5;
  f.clauses = {
      {Literal::Pos(0), Literal::Pos(1), Literal::Pos(2)},
      {Literal::Pos(0), Literal::Neg(1), Literal::Pos(3)},
      {Literal::Pos(0), Literal::Pos(3), Literal::Pos(4)},
      {Literal::Pos(1), Literal::Neg(0), Literal::Pos(4)},
      {Literal::Neg(0), Literal::Neg(1), Literal::Neg(4)},
  };
  return f;
}

ClausalFormula PaperFig5Dnf() { return PaperFig5Cnf(); }

ForallExistsCnf PaperFig5ForallExists() {
  ForallExistsCnf fe;
  fe.num_forall = 2;  // X = {x1, x2}
  fe.formula = PaperFig5Cnf();
  return fe;
}

}  // namespace pw
