// Propositional formulas in clausal form: CNF, DNF, and the
// forall-exists 3CNF instances of Stockmeyer's Pi-2-p-complete problem.

#ifndef PW_SOLVERS_CNF_H_
#define PW_SOLVERS_CNF_H_

#include <string>
#include <vector>

namespace pw {

/// A literal: variable index (0-based) plus sign.
struct Literal {
  int var = 0;
  bool negated = false;

  static Literal Pos(int v) { return {v, false}; }
  static Literal Neg(int v) { return {v, true}; }

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// A clause: for CNF a disjunction of literals, for DNF a conjunction.
using Clause = std::vector<Literal>;

/// A formula in clausal form over variables [0, num_vars).
struct ClausalFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// True iff every clause has exactly 3 literals.
  bool IsThree() const;

  /// Evaluates as CNF (AND of ORs) under `assignment`.
  bool EvalCnf(const std::vector<bool>& assignment) const;

  /// Evaluates as DNF (OR of ANDs) under `assignment`.
  bool EvalDnf(const std::vector<bool>& assignment) const;

  std::string ToString(bool as_cnf) const;
};

/// A forall-exists CNF instance: variables [0, num_forall) are universally
/// quantified (the paper's X), variables [num_forall, num_vars) are
/// existentially quantified (the paper's Y). The question (Pi-2-p-complete
/// for 3CNF, Stockmeyer 1976): for every assignment of X, is there an
/// assignment of Y making the CNF true?
struct ForallExistsCnf {
  int num_forall = 0;
  ClausalFormula formula;
};

/// The running example of Fig. 5 read as 3CNF:
///   c1 = x1 v x2 v x3,   c2 = x1 v -x2 v x4,  c3 = x1 v x4 v x5,
///   c4 = x2 v -x1 v x5,  c5 = -x1 v -x2 v -x5      (variables 0-based).
ClausalFormula PaperFig5Cnf();

/// The same clause matrix read as 3DNF (ORs of the ANDed clauses of Fig. 5).
ClausalFormula PaperFig5Dnf();

/// Fig. 5's forall-exists split: X = {x1, x2}, Y = {x3, x4, x5}.
ForallExistsCnf PaperFig5ForallExists();

}  // namespace pw

#endif  // PW_SOLVERS_CNF_H_
