// Simple undirected graphs used by the 3-colorability reductions.

#ifndef PW_SOLVERS_GRAPH_H_
#define PW_SOLVERS_GRAPH_H_

#include <string>
#include <utility>
#include <vector>

namespace pw {

/// An undirected graph on nodes [0, num_nodes). Edges are stored once with
/// an arbitrary orientation (a, b), matching the paper's "pick an arbitrary
/// orientation of the edges" convention in the reductions.
class Graph {
 public:
  explicit Graph(int num_nodes = 0) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// Adds edge {a, b}. Self-loops and duplicates are the caller's concern.
  void AddEdge(int a, int b);

  /// Adjacency lists (both directions).
  std::vector<std::vector<int>> AdjacencyLists() const;

  /// The example graph of Fig. 4(a): nodes 1..5 (we use 0..4), edges
  /// 1-2, 2-3, 3-4, 4-1, 3-5.
  static Graph PaperFig4a();

  std::string ToString() const;

 private:
  int num_nodes_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace pw

#endif  // PW_SOLVERS_GRAPH_H_
