// Independent certificate checking for the SAT core: DRAT-style clausal
// proofs verified by reverse unit propagation (RUP), and model checking for
// satisfiable answers. Deliberately shares no code with the solver — no
// watched literals, no trail, no activity machinery — so a solver bug cannot
// hide inside its own checker. Every "certain"/"impossible" verdict the
// decision layer derives from the solver can thus ship with a proof that an
// adversarial consumer re-verifies in time linear-ish in the proof size.

#ifndef PW_SOLVERS_PROOF_H_
#define PW_SOLVERS_PROOF_H_

#include <string>
#include <vector>

#include "solvers/cnf.h"

namespace pw {

/// A clausal proof in derivation order. Every clause must be a reverse-unit-
/// propagation consequence of the axioms plus the earlier proof clauses:
/// assuming its negation and unit-propagating over them reaches a conflict.
/// An UNSAT proof ends in a clause that conflicts under the checked
/// assumptions — the empty clause when there are none, the negation of the
/// failed-assumption core otherwise.
struct DratProof {
  std::vector<Clause> added;

  bool empty() const { return added.empty(); }
};

/// A self-contained answer certificate: a satisfying model when `sat`, a
/// clausal UNSAT proof otherwise.
struct SatCertificate {
  bool sat = false;
  std::vector<bool> model;  // meaningful when sat
  DratProof proof;          // meaningful when !sat
};

/// Checks that `model` satisfies every clause of `formula` read as CNF.
/// On failure returns false and, when `error` is non-null, names the first
/// falsified clause.
bool CheckModel(const ClausalFormula& formula, const std::vector<bool>& model,
                std::string* error = nullptr);

/// Checks that `proof` establishes unsatisfiability of `formula` conjoined
/// with the unit `assumptions`: every added clause is RUP over the axioms
/// plus the earlier additions, and propagating the assumptions over the
/// final clause set conflicts. Pass an empty assumption vector for plain
/// UNSAT proofs.
bool CheckUnsatProof(const ClausalFormula& formula,
                     const std::vector<Literal>& assumptions,
                     const DratProof& proof, std::string* error = nullptr);

/// Verifies a certificate against `formula` + `assumptions`: model checking
/// (including the assumptions) when it claims SAT, proof checking when it
/// claims UNSAT.
bool VerifyCertificate(const ClausalFormula& formula,
                       const std::vector<Literal>& assumptions,
                       const SatCertificate& certificate,
                       std::string* error = nullptr);

}  // namespace pw

#endif  // PW_SOLVERS_PROOF_H_
