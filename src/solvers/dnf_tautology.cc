#include "solvers/dnf_tautology.h"

#include "solvers/sat.h"

namespace pw {

namespace {
/// The complement of a DNF is the CNF with every literal negated:
/// NOT (OR_i AND_j l_ij)  ==  AND_i OR_j NOT l_ij.
ClausalFormula ComplementCnf(const ClausalFormula& dnf) {
  ClausalFormula cnf;
  cnf.num_vars = dnf.num_vars;
  cnf.clauses.reserve(dnf.clauses.size());
  for (const Clause& c : dnf.clauses) {
    Clause neg;
    neg.reserve(c.size());
    for (const Literal& lit : c) neg.push_back({lit.var, !lit.negated});
    cnf.clauses.push_back(std::move(neg));
  }
  return cnf;
}
}  // namespace

bool IsDnfTautology(const ClausalFormula& formula) {
  if (formula.clauses.empty()) return false;
  return !IsSatisfiable(ComplementCnf(formula));
}

std::optional<std::vector<bool>> FindDnfCounterexample(
    const ClausalFormula& formula) {
  if (formula.clauses.empty()) {
    return std::vector<bool>(formula.num_vars, false);
  }
  return SolveSat(ComplementCnf(formula));
}

}  // namespace pw
