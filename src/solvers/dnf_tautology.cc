#include "solvers/dnf_tautology.h"

namespace pw {

ClausalFormula DnfComplementCnf(const ClausalFormula& dnf) {
  ClausalFormula cnf;
  cnf.num_vars = dnf.num_vars;
  cnf.clauses.reserve(dnf.clauses.size());
  for (const Clause& c : dnf.clauses) {
    Clause neg;
    neg.reserve(c.size());
    for (const Literal& lit : c) neg.push_back({lit.var, !lit.negated});
    cnf.clauses.push_back(std::move(neg));
  }
  return cnf;
}

TautologyVerdict CheckDnfTautology(const ClausalFormula& formula,
                                   const SatOptions& options) {
  // The empty DNF denotes "false", which the empty complement CNF (trivially
  // satisfiable) classifies correctly: not a tautology, any assignment
  // falsifies it.
  SatResult complement = SolveCnf(DnfComplementCnf(formula), options);
  TautologyVerdict verdict;
  if (complement.sat) {
    complement.model.resize(formula.num_vars);
    verdict.is_tautology = false;
    verdict.counterexample = complement.model;
  } else {
    verdict.is_tautology = true;
  }
  verdict.certificate = complement.Certificate();
  return verdict;
}

bool IsDnfTautology(const ClausalFormula& formula) {
  return CheckDnfTautology(formula).is_tautology;
}

std::optional<std::vector<bool>> FindDnfCounterexample(
    const ClausalFormula& formula) {
  return CheckDnfTautology(formula).counterexample;
}

}  // namespace pw
