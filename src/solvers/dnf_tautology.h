// 3DNF tautology — the coNP-complete problem behind Theorems 3.2(3,4),
// 4.2(4) and 5.3(2).

#ifndef PW_SOLVERS_DNF_TAUTOLOGY_H_
#define PW_SOLVERS_DNF_TAUTOLOGY_H_

#include <optional>
#include <vector>

#include "solvers/cnf.h"

namespace pw {

/// Decides whether the DNF `formula` (OR of ANDed clauses) is a tautology.
/// Implemented as UNSAT of the complementary CNF (negate every literal and
/// read the clause matrix as CNF), decided by DPLL.
bool IsDnfTautology(const ClausalFormula& formula);

/// If the DNF is not a tautology, returns a falsifying assignment.
std::optional<std::vector<bool>> FindDnfCounterexample(
    const ClausalFormula& formula);

}  // namespace pw

#endif  // PW_SOLVERS_DNF_TAUTOLOGY_H_
