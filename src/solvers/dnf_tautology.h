// 3DNF tautology — the coNP-complete problem behind Theorems 3.2(3,4),
// 4.2(4) and 5.3(2). Decided as UNSAT of the complementary CNF; verdicts
// come with a certificate over that complement (an UNSAT proof when the DNF
// is a tautology, a falsifying model otherwise) that the independent checker
// in solvers/proof.h re-verifies.

#ifndef PW_SOLVERS_DNF_TAUTOLOGY_H_
#define PW_SOLVERS_DNF_TAUTOLOGY_H_

#include <optional>
#include <vector>

#include "solvers/proof.h"
#include "solvers/sat.h"

namespace pw {

/// A tautology verdict with its evidence.
struct TautologyVerdict {
  bool is_tautology = false;
  /// Engaged when !is_tautology: an assignment falsifying every conjunct.
  std::optional<std::vector<bool>> counterexample;
  /// Certificate over DnfComplementCnf(dnf): an UNSAT proof when
  /// is_tautology, the falsifying model otherwise. Verify with
  /// VerifyCertificate(DnfComplementCnf(dnf), {}, certificate).
  SatCertificate certificate;
};

/// The complement of a DNF is the CNF with every literal negated:
/// NOT (OR_i AND_j l_ij)  ==  AND_i OR_j NOT l_ij. Exposed so callers can
/// re-verify tautology certificates independently.
ClausalFormula DnfComplementCnf(const ClausalFormula& dnf);

/// Decides whether the DNF `formula` (OR of ANDed clauses) is a tautology
/// and attaches the checkable certificate.
TautologyVerdict CheckDnfTautology(const ClausalFormula& formula,
                                   const SatOptions& options = {});

/// Decides whether the DNF `formula` (OR of ANDed clauses) is a tautology.
bool IsDnfTautology(const ClausalFormula& formula);

/// If the DNF is not a tautology, returns a falsifying assignment.
std::optional<std::vector<bool>> FindDnfCounterexample(
    const ClausalFormula& formula);

}  // namespace pw

#endif  // PW_SOLVERS_DNF_TAUTOLOGY_H_
