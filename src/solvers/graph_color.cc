#include "solvers/graph_color.h"

#include <algorithm>

namespace pw {

namespace {

bool Backtrack(const std::vector<std::vector<int>>& adj,
               const std::vector<int>& order, size_t pos, int k,
               std::vector<int>& colors) {
  if (pos == order.size()) return true;
  int node = order[pos];
  for (int c = 0; c < k; ++c) {
    bool ok = true;
    for (int nb : adj[node]) {
      if (colors[nb] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    colors[node] = c;
    if (Backtrack(adj, order, pos + 1, k, colors)) return true;
    colors[node] = -1;
  }
  return false;
}

}  // namespace

std::optional<std::vector<int>> ColorGraph(const Graph& graph, int k) {
  auto adj = graph.AdjacencyLists();
  // Self-loops are never colorable (for k >= 1 the node conflicts with
  // itself).
  for (const auto& [a, b] : graph.edges()) {
    if (a == b) return std::nullopt;
  }
  std::vector<int> order(graph.num_nodes());
  for (int i = 0; i < graph.num_nodes(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&adj](int a, int b) {
    return adj[a].size() > adj[b].size();
  });
  std::vector<int> colors(graph.num_nodes(), -1);
  if (!Backtrack(adj, order, 0, k, colors)) return std::nullopt;
  return colors;
}

bool IsThreeColorable(const Graph& graph) {
  return ColorGraph(graph, 3).has_value();
}

}  // namespace pw
