#include "solvers/qbf.h"

#include "solvers/sat.h"

namespace pw {

namespace {

/// Restricts `formula` by the assignment of universal variables [0, nx):
/// drops satisfied clauses, removes falsified literals. Variables keep their
/// indices (universal variables no longer occur).
std::optional<ClausalFormula> Restrict(const ClausalFormula& formula, int nx,
                                       const std::vector<bool>& x) {
  ClausalFormula out;
  out.num_vars = formula.num_vars;
  for (const Clause& c : formula.clauses) {
    Clause kept;
    bool sat = false;
    for (const Literal& lit : c) {
      if (lit.var < nx) {
        if (x[lit.var] != lit.negated) {
          sat = true;
          break;
        }
        // falsified literal: drop
      } else {
        kept.push_back(lit);
      }
    }
    if (sat) continue;
    if (kept.empty()) return std::nullopt;  // clause falsified outright
    out.clauses.push_back(std::move(kept));
  }
  return out;
}

}  // namespace

bool SolveForallExists(const ForallExistsCnf& instance) {
  return !FindForallCounterexample(instance).has_value();
}

std::optional<std::vector<bool>> FindForallCounterexample(
    const ForallExistsCnf& instance) {
  int nx = instance.num_forall;
  std::vector<bool> x(nx, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << nx); ++mask) {
    for (int i = 0; i < nx; ++i) x[i] = (mask >> i) & 1;
    auto restricted = Restrict(instance.formula, nx, x);
    if (!restricted || !IsSatisfiable(*restricted)) return x;
  }
  return std::nullopt;
}

}  // namespace pw
