#include "solvers/qbf.h"

#include <cassert>

namespace pw {

namespace {

/// Restricts `formula` by the assignment of universal variables [0, nx):
/// drops satisfied clauses, removes falsified literals. Variables keep their
/// indices (universal variables no longer occur). Used by the enumeration
/// baseline only — the CEGAR path restricts through assumptions instead.
std::optional<ClausalFormula> Restrict(const ClausalFormula& formula, int nx,
                                       const std::vector<bool>& x) {
  ClausalFormula out;
  out.num_vars = formula.num_vars;
  for (const Clause& c : formula.clauses) {
    Clause kept;
    bool sat = false;
    for (const Literal& lit : c) {
      if (lit.var < nx) {
        if (x[lit.var] != lit.negated) {
          sat = true;
          break;
        }
        // falsified literal: drop
      } else {
        kept.push_back(lit);
      }
    }
    if (sat) continue;
    if (kept.empty()) return std::nullopt;  // clause falsified outright
    out.clauses.push_back(std::move(kept));
  }
  return out;
}

/// The universal assignment as assumption literals for the full formula.
std::vector<Literal> UniversalAssumptions(const std::vector<bool>& x) {
  std::vector<Literal> assumptions;
  assumptions.reserve(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    assumptions.push_back({static_cast<int>(i), !x[i]});
  }
  return assumptions;
}

QbfResult Reject(std::string error) {
  QbfResult result;
  result.ok = false;
  result.error = std::move(error);
  return result;
}

/// Seed baseline: enumerate every universal assignment. The mask shift is
/// defined only below 64 universals; larger instances are rejected with a
/// structured error instead of the former undefined-behavior shift.
QbfResult SolveByEnumeration(const ForallExistsCnf& instance,
                             const QbfOptions& options) {
  int nx = instance.num_forall;
  if (nx >= 64) {
    return Reject("enumeration baseline cannot iterate 2^" +
                  std::to_string(nx) +
                  " universal assignments (num_forall must be < 64); use the "
                  "CEGAR engine (QbfOptions{.use_cegar = true})");
  }
  QbfResult result;
  std::vector<bool> x(nx, false);
  for (uint64_t mask = 0; mask < (uint64_t{1} << nx); ++mask) {
    ++result.candidates;
    for (int i = 0; i < nx; ++i) x[i] = ((mask >> i) & 1) != 0;
    auto restricted = Restrict(instance.formula, nx, x);
    if (!restricted.has_value() || !SolveCnf(*restricted, options.sat).sat) {
      result.holds = false;
      result.counterexample = x;
      // Re-derive the certificate against the *full* formula so it is
      // checkable with the universal literals as assumptions, exactly like
      // the CEGAR path's.
      SatResult refuted = SolveCnfUnderAssumptions(
          instance.formula, UniversalAssumptions(x), options.sat);
      result.certificate = refuted.Certificate();
      return result;
    }
  }
  result.holds = true;
  return result;
}

/// CEGAR counterexample search (Janota & Marques-Silva style). An
/// abstraction solver over the universal variables proposes candidates; the
/// main solver checks each under assumptions. A witness y eliminates every
/// universal assignment it repairs: a candidate must falsify, on its
/// universal literals, some clause that y leaves unsatisfied — encoded with
/// one fresh selector variable per such clause.
QbfResult SolveByCegar(const ForallExistsCnf& instance,
                       const QbfOptions& options) {
  int nx = instance.num_forall;
  const ClausalFormula& formula = instance.formula;
  QbfResult result;

  SatSolver main_solver(options.sat);
  main_solver.AddFormula(formula);

  SatSolver abstraction(options.sat);
  abstraction.EnsureVars(nx);

  std::vector<bool> x(nx, false);
  for (;;) {
    ++result.candidates;
    SatResult candidate = abstraction.Solve();
    if (!candidate.sat) {
      // Every universal assignment is repaired by some recorded witness.
      result.holds = true;
      return result;
    }
    for (int i = 0; i < nx; ++i) x[i] = candidate.model[i];
    std::vector<Literal> assumptions = UniversalAssumptions(x);
    SatResult check = main_solver.SolveUnderAssumptions(assumptions);
    if (!check.sat) {
      result.holds = false;
      result.counterexample = x;
      result.certificate = check.Certificate();
      return result;
    }
    // Refine: a future candidate x' must falsify (on universal literals)
    // some clause whose existential literals the witness y all misses —
    // otherwise y would repair x' too.
    Clause selector_clause;
    for (const Clause& c : formula.clauses) {
      bool witness_satisfies = false;
      for (const Literal& lit : c) {
        if (lit.var >= nx && check.model[lit.var] != lit.negated) {
          witness_satisfies = true;
          break;
        }
      }
      if (witness_satisfies) continue;
      // The witness leaves this clause to the universal variables; the
      // current candidate satisfied it there, so it has universal literals.
      int selector = abstraction.NewVar();
      bool has_universal = false;
      for (const Literal& lit : c) {
        if (lit.var >= nx) continue;
        has_universal = true;
        // selector -> the universal literal is false under the candidate.
        abstraction.AddClause(
            {Literal::Neg(selector), {lit.var, !lit.negated}});
      }
      assert(has_universal &&
             "a witness-missed clause must touch universal variables");
      (void)has_universal;
      selector_clause.push_back(Literal::Pos(selector));
    }
    if (selector_clause.empty()) {
      // The witness satisfies every clause on existential literals alone: it
      // repairs every universal assignment.
      result.holds = true;
      return result;
    }
    abstraction.AddClause(selector_clause);
    ++result.refinements;
  }
}

}  // namespace

QbfResult SolveForallExistsCertified(const ForallExistsCnf& instance,
                                     const QbfOptions& options) {
  if (instance.num_forall < 0 ||
      instance.num_forall > instance.formula.num_vars) {
    return Reject("malformed quantifier split: num_forall = " +
                  std::to_string(instance.num_forall) + " with " +
                  std::to_string(instance.formula.num_vars) + " variables");
  }
  return options.use_cegar ? SolveByCegar(instance, options)
                           : SolveByEnumeration(instance, options);
}

bool SolveForallExists(const ForallExistsCnf& instance) {
  QbfResult result = SolveForallExistsCertified(instance);
  assert(result.ok);
  return result.ok && result.holds;
}

std::optional<std::vector<bool>> FindForallCounterexample(
    const ForallExistsCnf& instance) {
  QbfResult result = SolveForallExistsCertified(instance);
  assert(result.ok);
  if (!result.ok || result.holds) return std::nullopt;
  return result.counterexample;
}

}  // namespace pw
