#include "solvers/proof.h"

#include <algorithm>
#include <cstddef>

namespace pw {

namespace {

/// A stand-alone unit propagator over occurrence lists. Unlike the solver's
/// two-watched-literal scheme, every clause containing a newly falsified
/// literal is re-scanned in full; assignments are undone through an explicit
/// trail between queries. Simple on purpose: the checker's trust story rests
/// on it being obviously correct, not fast.
class RupChecker {
 public:
  void AddClause(const Clause& clause) {
    // Drop duplicate literals (sound: l OR l == l). Without this a clause
    // like {-x, -x} would never look unit to the scan below, and a
    // derivation the solver found through its own deduplication would be
    // wrongly rejected.
    Clause deduped = clause;
    std::sort(deduped.begin(), deduped.end(),
              [](const Literal& a, const Literal& b) {
                return Index(a) < Index(b);
              });
    deduped.erase(std::unique(deduped.begin(), deduped.end()), deduped.end());
    int id = static_cast<int>(clauses_.size());
    for (const Literal& lit : deduped) {
      EnsureVar(lit.var);
      occurrences_[Index(lit)].push_back(id);
    }
    if (deduped.empty()) has_empty_clause_ = true;
    if (deduped.size() == 1) unit_clauses_.push_back(deduped[0]);
    clauses_.push_back(std::move(deduped));
  }

  /// True when assuming every literal of `assumed` and unit-propagating over
  /// the clause set reaches a conflict.
  bool PropagatesToConflict(const std::vector<Literal>& assumed) {
    bool conflict = has_empty_clause_;
    // Seed with the assumptions and the unit clauses: before anything is
    // assigned those are the only unit-implied literals, and everything else
    // is reached through the occurrence walk below.
    for (const Literal& lit : assumed) {
      if (conflict) break;
      EnsureVar(lit.var);
      conflict = !Assign(lit);
    }
    for (size_t i = 0; !conflict && i < unit_clauses_.size(); ++i) {
      conflict = !Assign(unit_clauses_[i]);
    }
    size_t head = 0;
    while (!conflict && head < trail_.size()) {
      int var = trail_[head++];
      // The literal of `var` that just became false.
      Literal falsified{var, values_[var] > 0};
      for (int id : occurrences_[Index(falsified)]) {
        const Clause& clause = clauses_[id];
        const Literal* unit = nullptr;
        bool satisfied = false;
        int unassigned = 0;
        for (const Literal& lit : clause) {
          int8_t value = values_[lit.var];
          if (value == 0) {
            ++unassigned;
            unit = &lit;
            if (unassigned > 1) break;
          } else if ((value > 0) != lit.negated) {
            satisfied = true;
            break;
          }
        }
        if (satisfied || unassigned > 1) continue;
        if (unassigned == 0) {
          conflict = true;
          break;
        }
        Assign(*unit);  // cannot conflict: `unit` is unassigned
      }
    }
    for (int var : trail_) values_[var] = 0;
    trail_.clear();
    return conflict;
  }

 private:
  static int Index(const Literal& lit) {
    return 2 * lit.var + (lit.negated ? 1 : 0);
  }

  void EnsureVar(int var) {
    if (static_cast<size_t>(var) < values_.size()) return;
    values_.resize(var + 1, 0);
    occurrences_.resize(2 * (var + 1));
  }

  /// Makes `lit` true; false when it was already false.
  bool Assign(const Literal& lit) {
    int8_t want = lit.negated ? int8_t{-1} : int8_t{1};
    if (values_[lit.var] == want) return true;
    if (values_[lit.var] != 0) return false;
    values_[lit.var] = want;
    trail_.push_back(lit.var);
    return true;
  }

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> occurrences_;  // literal index -> clause ids
  std::vector<int8_t> values_;                 // 0 unset, 1 true, -1 false
  std::vector<Literal> unit_clauses_;
  std::vector<int> trail_;
  bool has_empty_clause_ = false;
};

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

bool CheckModel(const ClausalFormula& formula, const std::vector<bool>& model,
                std::string* error) {
  if (model.size() < static_cast<size_t>(formula.num_vars)) {
    SetError(error, "model covers " + std::to_string(model.size()) +
                        " variables, formula has " +
                        std::to_string(formula.num_vars));
    return false;
  }
  for (size_t i = 0; i < formula.clauses.size(); ++i) {
    bool satisfied = false;
    for (const Literal& lit : formula.clauses[i]) {
      if (model[lit.var] != lit.negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      SetError(error, "clause " + std::to_string(i) +
                          " is falsified by the claimed model");
      return false;
    }
  }
  return true;
}

bool CheckUnsatProof(const ClausalFormula& formula,
                     const std::vector<Literal>& assumptions,
                     const DratProof& proof, std::string* error) {
  RupChecker checker;
  for (const Clause& clause : formula.clauses) checker.AddClause(clause);
  std::vector<Literal> negated;
  for (size_t i = 0; i < proof.added.size(); ++i) {
    const Clause& clause = proof.added[i];
    negated.clear();
    negated.reserve(clause.size());
    for (const Literal& lit : clause) negated.push_back({lit.var, !lit.negated});
    if (!checker.PropagatesToConflict(negated)) {
      SetError(error, "proof clause " + std::to_string(i) +
                          " is not a reverse-unit-propagation consequence");
      return false;
    }
    checker.AddClause(clause);
  }
  if (!checker.PropagatesToConflict(assumptions)) {
    SetError(error,
             assumptions.empty()
                 ? std::string("proof does not derive the empty clause")
                 : std::string("proof does not refute the assumptions"));
    return false;
  }
  return true;
}

bool VerifyCertificate(const ClausalFormula& formula,
                       const std::vector<Literal>& assumptions,
                       const SatCertificate& certificate, std::string* error) {
  if (certificate.sat) {
    if (!CheckModel(formula, certificate.model, error)) return false;
    for (const Literal& lit : assumptions) {
      if (static_cast<size_t>(lit.var) >= certificate.model.size() ||
          certificate.model[lit.var] == lit.negated) {
        SetError(error, "claimed model violates an assumption");
        return false;
      }
    }
    return true;
  }
  return CheckUnsatProof(formula, assumptions, certificate.proof, error);
}

}  // namespace pw
