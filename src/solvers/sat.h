// CNF satisfiability. The default engine is an iterative trail-based CDCL —
// two-watched-literal propagation, 1UIP conflict analysis with clause
// learning, non-chronological backjumping, VSIDS-style activity decay, Luby
// restarts, and an assumptions interface for incremental solving — that logs
// a DRAT-style clausal proof on UNSAT so every verdict can be re-verified by
// the independent checker in solvers/proof.h. The seed recursive DPLL
// survives behind SatOptions{.use_cdcl = false} as the differential
// baseline, matching the repo's every-fast-path-keeps-its-slow-baseline
// convention. Reference oracle for the NP-hardness reductions
// (Theorems 3.1, 5.1, 5.2).

#ifndef PW_SOLVERS_SAT_H_
#define PW_SOLVERS_SAT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "solvers/cnf.h"
#include "solvers/proof.h"

namespace pw {

struct SatOptions {
  /// false routes through the seed recursive DPLL (no proofs, no learning,
  /// recursion depth scales with the variable count) — kept as the
  /// differential baseline.
  bool use_cdcl = true;
  /// Record learned clauses into a DRAT-style proof so UNSAT answers carry a
  /// checkable certificate (solvers/proof.h). CDCL only.
  bool log_proof = true;
  /// VSIDS variable-activity decay per conflict.
  double var_decay = 0.95;
  /// Base restart interval in conflicts; scaled by the Luby sequence.
  int luby_base = 64;
};

struct SatStats {
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
  int64_t restarts = 0;
  int64_t learned_clauses = 0;
  int64_t learned_literals = 0;
};

struct SatResult {
  bool sat = false;
  /// Total assignment over the solver's variables when sat.
  std::vector<bool> model;
  /// DRAT-style derivation when !sat and proof logging is on: checkable via
  /// CheckUnsatProof against the clauses the caller added, under the
  /// assumptions of the failing Solve call.
  DratProof proof;
  /// When !sat under assumptions: a subset of the assumptions that is
  /// already unsatisfiable with the clause set (the failed-assumption core).
  std::vector<Literal> core;
  SatStats stats;

  SatCertificate Certificate() const {
    return SatCertificate{sat, model, proof};
  }
};

/// An incremental CNF solver: add clauses and variables freely between Solve
/// calls; learned clauses and variable activities persist, so repeated
/// solves under changing assumptions (the CEGAR loop in qbf.cc, the
/// decision-procedure callers) pay for the shared structure once.
class SatSolver {
 public:
  explicit SatSolver(SatOptions options = {});
  ~SatSolver();
  SatSolver(SatSolver&&) noexcept;
  SatSolver& operator=(SatSolver&&) noexcept;

  /// Introduces a fresh variable and returns its index.
  int NewVar();
  /// Grows the variable space to at least `num_vars`.
  void EnsureVars(int num_vars);
  int num_vars() const;

  void AddClause(const Clause& clause);
  /// Adds every clause of `formula` and grows to its variable count.
  void AddFormula(const ClausalFormula& formula);

  SatResult Solve() { return SolveUnderAssumptions({}); }
  /// Solves the current clause set with `assumptions` fixed as unit
  /// decisions. On UNSAT the result carries a failed-assumption core and a
  /// proof refuting the assumptions; on SAT the model satisfies them.
  SatResult SolveUnderAssumptions(const std::vector<Literal>& assumptions);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot solve of `formula`.
SatResult SolveCnf(const ClausalFormula& formula, const SatOptions& options = {});

/// One-shot solve of `formula` under `assumptions`.
SatResult SolveCnfUnderAssumptions(const ClausalFormula& formula,
                                   const std::vector<Literal>& assumptions,
                                   const SatOptions& options = {});

/// Returns a satisfying assignment of the CNF `formula`, or std::nullopt if
/// unsatisfiable.
std::optional<std::vector<bool>> SolveSat(const ClausalFormula& formula);

/// Convenience: satisfiability only.
bool IsSatisfiable(const ClausalFormula& formula);

}  // namespace pw

#endif  // PW_SOLVERS_SAT_H_
