// CNF satisfiability via DPLL with unit propagation and pure-literal
// elimination. Reference oracle for the NP-hardness reductions
// (Theorems 3.1, 5.1, 5.2).

#ifndef PW_SOLVERS_SAT_H_
#define PW_SOLVERS_SAT_H_

#include <optional>
#include <vector>

#include "solvers/cnf.h"

namespace pw {

/// Returns a satisfying assignment of the CNF `formula`, or std::nullopt if
/// unsatisfiable.
std::optional<std::vector<bool>> SolveSat(const ClausalFormula& formula);

/// Convenience: satisfiability only.
bool IsSatisfiable(const ClausalFormula& formula);

}  // namespace pw

#endif  // PW_SOLVERS_SAT_H_
