// Maximum cardinality bipartite matching (Hopcroft–Karp).
//
// This is the substrate of the PTIME membership algorithm for Codd-tables
// (Theorem 3.1(1)) and of the PTIME unbounded-possibility algorithm
// (Theorem 5.1(1)).

#ifndef PW_SOLVERS_BIPARTITE_MATCHING_H_
#define PW_SOLVERS_BIPARTITE_MATCHING_H_

#include <vector>

namespace pw {

/// A bipartite graph with `num_left` left nodes and `num_right` right nodes.
class BipartiteGraph {
 public:
  BipartiteGraph(int num_left, int num_right)
      : num_right_(num_right), adj_(num_left) {}

  void AddEdge(int left, int right) { adj_[left].push_back(right); }

  int num_left() const { return static_cast<int>(adj_.size()); }
  int num_right() const { return num_right_; }
  const std::vector<int>& Neighbors(int left) const { return adj_[left]; }

 private:
  int num_right_;
  std::vector<std::vector<int>> adj_;
};

/// Result of a maximum matching computation.
struct MatchingResult {
  /// Number of matched pairs.
  int size = 0;
  /// match_left[l] = matched right node or -1.
  std::vector<int> match_left;
  /// match_right[r] = matched left node or -1.
  std::vector<int> match_right;
};

/// Computes a maximum-cardinality matching in O(E * sqrt(V)).
MatchingResult MaxBipartiteMatching(const BipartiteGraph& graph);

}  // namespace pw

#endif  // PW_SOLVERS_BIPARTITE_MATCHING_H_
