// Graph k-colorability by backtracking — reference oracle for the
// 3-colorability reductions of Theorem 3.1.

#ifndef PW_SOLVERS_GRAPH_COLOR_H_
#define PW_SOLVERS_GRAPH_COLOR_H_

#include <optional>
#include <vector>

#include "solvers/graph.h"

namespace pw {

/// Returns a proper coloring with colors [0, k), or std::nullopt if none
/// exists. Backtracking with most-constrained-first ordering.
std::optional<std::vector<int>> ColorGraph(const Graph& graph, int k);

/// Convenience: 3-colorability.
bool IsThreeColorable(const Graph& graph);

}  // namespace pw

#endif  // PW_SOLVERS_GRAPH_COLOR_H_
