#!/usr/bin/env python3
"""Gate the interned fast paths against their seed pairs.

Reads google-benchmark JSON files (--benchmark_out_format=json) and pairs
each fast-path benchmark with its seed-path twin by name:

    *_SemiNaive/N      vs  *_Naive/N         (conditioned Datalog fixpoint)
    *_InternedPath/N   vs  *_SeedPath/N      (Imielinski-Lipski image)
    *_HashJoin/N       vs  *_NestedLoop/N    (RA select-over-product fusion)
    *_IndexedJoin/N    vs  *_ScanJoin/N      (indexed body-atom matching)
    *_PlannedJoin/N    vs  *_BinaryFusion/N  (n-ary join planner vs the
                                              binary-only fusion baseline)
    *_Magic/N          vs  *_FullFixpoint/N  (magic-set demand evaluation vs
                                              full fixpoint + restriction)
    *_Incremental/N    vs  *_Recompute/N     (maintained materialized view vs
                                              full fixpoint per update)

Exits nonzero when any fast path takes more than --max-ratio times its seed
pair (default 2.0, the CI regression budget), or when no pair was found at
all (which means the bench names drifted and the gate is vacuous).
"""

import argparse
import json
import sys

PAIRS = [("SemiNaive", "Naive"), ("InternedPath", "SeedPath"),
         ("HashJoin", "NestedLoop"), ("IndexedJoin", "ScanJoin"),
         ("PlannedJoin", "BinaryFusion"), ("Magic", "FullFixpoint"),
         ("Incremental", "Recompute")]


def load_times(paths):
    times = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            times[bench["name"]] = (float(bench["real_time"]),
                                    bench.get("time_unit", "ns"))
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_files", nargs="+",
                        help="google-benchmark JSON output files")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="maximum fast/seed time ratio (default 2.0)")
    args = parser.parse_args()

    times = load_times(args.json_files)
    failures = []
    checked = 0
    for name in sorted(times):
        for fast_tag, seed_tag in PAIRS:
            if fast_tag not in name:
                continue
            seed_name = name.replace(fast_tag, seed_tag)
            if seed_name == name or seed_name not in times:
                continue
            checked += 1
            fast_time, unit = times[name]
            seed_time, _ = times[seed_name]
            ratio = fast_time / seed_time if seed_time > 0 else 0.0
            status = "FAIL" if ratio > args.max_ratio else "ok"
            print(f"[{status}] {name}: {fast_time:.0f}{unit} vs "
                  f"{seed_name}: {seed_time:.0f}{unit} (ratio {ratio:.2f}, "
                  f"limit {args.max_ratio:.2f})")
            if ratio > args.max_ratio:
                failures.append(name)

    if checked == 0:
        print("error: no fast/seed benchmark pairs found in "
              f"{args.json_files}; did the benchmark names change?",
              file=sys.stderr)
        return 1
    if failures:
        print(f"{len(failures)} of {checked} fast paths regressed past "
              f"{args.max_ratio:.1f}x", file=sys.stderr)
        return 1
    print(f"all {checked} fast-path pairs within {args.max_ratio:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
