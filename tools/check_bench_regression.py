#!/usr/bin/env python3
"""Gate the interned fast paths against their seed pairs.

Reads google-benchmark JSON files (--benchmark_out_format=json) and pairs
each fast-path benchmark with its seed-path twin by name:

    *_SemiNaive/N      vs  *_Naive/N         (conditioned Datalog fixpoint)
    *_InternedPath/N   vs  *_SeedPath/N      (Imielinski-Lipski image)
    *_HashJoin/N       vs  *_NestedLoop/N    (RA select-over-product fusion)
    *_IndexedJoin/N    vs  *_ScanJoin/N      (indexed body-atom matching)
    *_PlannedJoin/N    vs  *_BinaryFusion/N  (n-ary join planner vs the
                                              binary-only fusion baseline)
    *_Magic/N          vs  *_FullFixpoint/N  (magic-set demand evaluation vs
                                              full fixpoint + restriction)
    *_StratumSched/N   vs  *_Monolithic/N    (SCC-scheduled semi-naive
                                              fixpoint vs the monolithic
                                              all-rules round schedule)
    *_Incremental/N    vs  *_Recompute/N     (maintained materialized view vs
                                              full fixpoint per update)
    *_Snapshot/N       vs  *_Direct/N        (versioned snapshot reads over
                                              the shared interner vs direct
                                              single-thread reads)
    *_DDBackend/N      vs  *_Antichain/N     (decision-diagram condition
                                              backend vs the conjunctive
                                              antichain backend, gated at a
                                              tightened 1.2x)
    *_Cdcl/N           vs  *_Dpll/N          (trail-based CDCL SAT core vs
                                              the seed recursive DPLL)

Exits nonzero when any fast path takes more than --max-ratio times its seed
pair (default 2.0, the CI regression budget; pairs may carry a tighter
per-pair limit), or when no pair was found at all (which means the bench
names drifted and the gate is vacuous).

Additionally, with --min-scale > 0, enforces the concurrency scaling gate:
for every benchmark family named `<base>/N` (with N a thread count) that
reports items_per_second and contains "Snapshot", the N = --scale-threads
run must process at least --min-scale times the items/sec of the N = 1 run.
A collapse here means a lock serialized the readers. The gate fails as
vacuous if --min-scale is set but no such family exists in the input.

With --dd-speedup-floor > 0 (default 5.0), enforces the condition-diversity
blowup gate: for every *_DDBackend family swept over sizes `<base>/N`, the
antichain twin at the LARGEST common N must take at least that factor longer
— the whole point of the diagram backend is killing the antichain's
exponential growth at high condition diversity, so a collapse to parity at
the big sizes is a regression even though the pairwise 1.2x check passes.
Fails as vacuous when the floor is set but no such family pair exists.

With --cdcl-speedup-floor > 0 (default 5.0), enforces the propagation gate
on the SAT core: for every *Chain_Cdcl family swept over sizes `<base>/N`,
the seed-DPLL twin at the LARGEST common N must take at least that factor
longer. The chain instances are pure unit propagation — watched literals
walk them in linear time while the seed solver's re-scan loop is quadratic —
so a collapse to parity means the watcher machinery broke. Fails as vacuous
when the floor is set but no such family pair exists.
"""

import argparse
import json
import re
import sys

# (fast_tag, seed_tag, per-pair max ratio or None for the --max-ratio
# default). The DDBackend pair runs tighter: the diagram backend must never
# lose the low-diversity end of its sweep by more than 1.2x.
PAIRS = [("SemiNaive", "Naive", None), ("InternedPath", "SeedPath", None),
         ("HashJoin", "NestedLoop", None), ("IndexedJoin", "ScanJoin", None),
         ("PlannedJoin", "BinaryFusion", None),
         ("Magic", "FullFixpoint", None),
         ("StratumSched", "Monolithic", None),
         ("Incremental", "Recompute", None), ("Snapshot", "Direct", None),
         ("DDBackend", "Antichain", 1.2), ("Cdcl", "Dpll", None)]

THREADED_NAME = re.compile(r"^(?P<base>.+)/(?P<n>\d+)(?:/real_time)?$")


def load_benchmarks(paths):
    """name -> (real_time, unit, items_per_second or None)."""
    benchmarks = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            benchmarks[bench["name"]] = (float(bench["real_time"]),
                                         bench.get("time_unit", "ns"),
                                         bench.get("items_per_second"))
    return benchmarks


def check_pairs(benchmarks, max_ratio):
    failures = []
    checked = 0
    for name in sorted(benchmarks):
        for fast_tag, seed_tag, pair_ratio in PAIRS:
            if fast_tag not in name:
                continue
            seed_name = name.replace(fast_tag, seed_tag)
            if seed_name == name or seed_name not in benchmarks:
                continue
            checked += 1
            limit = pair_ratio if pair_ratio is not None else max_ratio
            fast_time, unit, _ = benchmarks[name]
            seed_time, _, _ = benchmarks[seed_name]
            ratio = fast_time / seed_time if seed_time > 0 else 0.0
            status = "FAIL" if ratio > limit else "ok"
            print(f"[{status}] {name}: {fast_time:.0f}{unit} vs "
                  f"{seed_name}: {seed_time:.0f}{unit} (ratio {ratio:.2f}, "
                  f"limit {limit:.2f})")
            if ratio > limit:
                failures.append(name)
    return checked, failures


def check_dd_speedup(benchmarks, floor):
    """seed/fast at the largest size of every DDBackend sweep >= floor."""
    families = {}
    for name, (fast_time, unit, _) in benchmarks.items():
        if "DDBackend" not in name:
            continue
        m = THREADED_NAME.match(name)
        if m is None:
            continue
        seed_name = name.replace("DDBackend", "Antichain")
        if seed_name not in benchmarks:
            continue
        families.setdefault(m.group("base"), {})[int(m.group("n"))] = \
            (fast_time, benchmarks[seed_name][0], unit)
    failures = []
    checked = 0
    for base in sorted(families):
        checked += 1
        largest = max(families[base])
        fast_time, seed_time, unit = families[base][largest]
        speedup = seed_time / fast_time if fast_time > 0 else 0.0
        status = "FAIL" if speedup < floor else "ok"
        print(f"[{status}] {base}/{largest}: {fast_time:.0f}{unit} vs "
              f"antichain {seed_time:.0f}{unit} "
              f"(speedup {speedup:.1f}x, floor {floor:.1f}x)")
        if speedup < floor:
            failures.append(base)
    return checked, failures


def check_cdcl_speedup(benchmarks, floor):
    """seed/fast at the largest size of every *Chain_Cdcl sweep >= floor."""
    families = {}
    for name, (fast_time, unit, _) in benchmarks.items():
        if "Chain_Cdcl" not in name:
            continue
        m = THREADED_NAME.match(name)
        if m is None:
            continue
        seed_name = name.replace("Cdcl", "Dpll")
        if seed_name not in benchmarks:
            continue
        families.setdefault(m.group("base"), {})[int(m.group("n"))] = \
            (fast_time, benchmarks[seed_name][0], unit)
    failures = []
    checked = 0
    for base in sorted(families):
        checked += 1
        largest = max(families[base])
        fast_time, seed_time, unit = families[base][largest]
        speedup = seed_time / fast_time if fast_time > 0 else 0.0
        status = "FAIL" if speedup < floor else "ok"
        print(f"[{status}] {base}/{largest}: {fast_time:.0f}{unit} vs "
              f"seed DPLL {seed_time:.0f}{unit} "
              f"(speedup {speedup:.1f}x, floor {floor:.1f}x)")
        if speedup < floor:
            failures.append(base)
    return checked, failures


def check_scaling(benchmarks, min_scale, scale_threads):
    """items_per_second at `scale_threads` must beat 1-thread by min_scale."""
    families = {}
    for name, (_, _, items_per_second) in benchmarks.items():
        if items_per_second is None or "Snapshot" not in name:
            continue
        m = THREADED_NAME.match(name)
        if m is None:
            continue
        families.setdefault(m.group("base"), {})[int(m.group("n"))] = \
            items_per_second
    failures = []
    checked = 0
    for base in sorted(families):
        by_threads = families[base]
        if 1 not in by_threads or scale_threads not in by_threads:
            continue
        checked += 1
        one = by_threads[1]
        many = by_threads[scale_threads]
        scale = many / one if one > 0 else 0.0
        status = "FAIL" if scale < min_scale else "ok"
        print(f"[{status}] {base}: {many:.0f} items/s at {scale_threads} "
              f"threads vs {one:.0f} at 1 (scale {scale:.2f}x, "
              f"minimum {min_scale:.2f}x)")
        if scale < min_scale:
            failures.append(base)
    return checked, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_files", nargs="+",
                        help="google-benchmark JSON output files")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="maximum fast/seed time ratio (default 2.0)")
    parser.add_argument("--min-scale", type=float, default=0.0,
                        help="minimum N-thread/1-thread items/sec factor for "
                             "Snapshot throughput families (0 disables)")
    parser.add_argument("--scale-threads", type=int, default=4,
                        help="thread count the scaling gate compares against "
                             "the 1-thread run (default 4)")
    parser.add_argument("--dd-speedup-floor", type=float, default=5.0,
                        help="minimum antichain/DD time factor at the largest "
                             "size of every *_DDBackend sweep (0 disables)")
    parser.add_argument("--cdcl-speedup-floor", type=float, default=5.0,
                        help="minimum DPLL/CDCL time factor at the largest "
                             "size of every *Chain_Cdcl sweep (0 disables)")
    args = parser.parse_args()

    benchmarks = load_benchmarks(args.json_files)
    checked, failures = check_pairs(benchmarks, args.max_ratio)

    if checked == 0:
        print("error: no fast/seed benchmark pairs found in "
              f"{args.json_files}; did the benchmark names change?",
              file=sys.stderr)
        return 1

    if args.min_scale > 0:
        scale_checked, scale_failures = check_scaling(
            benchmarks, args.min_scale, args.scale_threads)
        if scale_checked == 0:
            print("error: --min-scale set but no Snapshot throughput family "
                  f"with both 1 and {args.scale_threads} threads was found; "
                  "the scaling gate is vacuous", file=sys.stderr)
            return 1
        failures += scale_failures

    if args.dd_speedup_floor > 0:
        dd_checked, dd_failures = check_dd_speedup(
            benchmarks, args.dd_speedup_floor)
        if dd_checked == 0:
            print("error: --dd-speedup-floor set but no DDBackend/Antichain "
                  "benchmark family was found; the diversity gate is vacuous",
                  file=sys.stderr)
            return 1
        failures += dd_failures

    if args.cdcl_speedup_floor > 0:
        cdcl_checked, cdcl_failures = check_cdcl_speedup(
            benchmarks, args.cdcl_speedup_floor)
        if cdcl_checked == 0:
            print("error: --cdcl-speedup-floor set but no Chain_Cdcl/"
                  "Chain_Dpll benchmark family was found; the propagation "
                  "gate is vacuous", file=sys.stderr)
            return 1
        failures += cdcl_failures

    if failures:
        print(f"{len(failures)} of {checked} gated paths failed",
              file=sys.stderr)
        return 1
    print(f"all {checked} fast-path pairs within {args.max_ratio:.1f}x" +
          (f"; scaling >= {args.min_scale:.1f}x at {args.scale_threads} "
           "threads" if args.min_scale > 0 else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
