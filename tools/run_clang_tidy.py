#!/usr/bin/env python3
"""Run clang-tidy over the library sources, findings-as-failures.

Reads compile_commands.json from the build directory (CMake writes it —
CMAKE_EXPORT_COMPILE_COMMANDS is on in the top-level CMakeLists.txt),
filters it to the first-party sources under src/, and runs clang-tidy on
each translation unit in parallel with the check set pinned in the root
.clang-tidy (which also sets WarningsAsErrors, so any finding fails the
run). Tests and benches are out of scope: they lean on gtest/benchmark
macros that expand to patterns the bugprone checks flag by design.

Usage:
    python3 tools/run_clang_tidy.py --build-dir build [--jobs N]
    python3 tools/run_clang_tidy.py --build-dir build src/datalog/analysis.cc

Positional arguments restrict the run to matching sources (substring match
against the absolute path) — handy for iterating on one finding. Exits
nonzero when clang-tidy is missing, when no translation units matched, or
when any invocation reported a finding.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

# Newest first; the bare name last resolves whatever the distro symlinks.
CLANG_TIDY_CANDIDATES = [f"clang-tidy-{v}" for v in range(21, 13, -1)] + [
    "clang-tidy"
]


def find_clang_tidy():
    for name in CLANG_TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_translation_units(build_dir, filters):
    """(file, directory) pairs for the src/ entries of the compilation DB."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"error: {db_path} not found; configure with CMake first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
              file=sys.stderr)
        return None
    with open(db_path) as f:
        entries = json.load(f)
    root = os.path.dirname(os.path.abspath(db_path))
    src_root = os.path.normpath(os.path.join(root, os.pardir, "src"))
    units = []
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        if not path.startswith(src_root + os.sep):
            continue
        if filters and not any(f in path for f in filters):
            continue
        units.append((path, entry["directory"]))
    return sorted(set(units))


def run_one(clang_tidy, build_dir, unit):
    path, _ = unit
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return path, proc.returncode, proc.stdout, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("filters", nargs="*",
                        help="only run on sources whose path contains one of "
                             "these substrings")
    parser.add_argument("--build-dir", default="build",
                        help="build directory holding compile_commands.json "
                             "(default: build)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                        help="parallel clang-tidy invocations")
    args = parser.parse_args()

    clang_tidy = find_clang_tidy()
    if clang_tidy is None:
        print("error: no clang-tidy binary on PATH (tried "
              f"{', '.join(CLANG_TIDY_CANDIDATES)})", file=sys.stderr)
        return 1

    units = load_translation_units(args.build_dir, args.filters)
    if units is None:
        return 1
    if not units:
        print("error: no src/ translation units matched; the lint lane is "
              "vacuous", file=sys.stderr)
        return 1

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, clang_tidy, args.build_dir, u)
                   for u in units]
        for future in concurrent.futures.as_completed(futures):
            path, returncode, stdout, stderr = future.result()
            rel = os.path.relpath(path)
            if returncode != 0:
                failures += 1
                print(f"[FAIL] {rel}")
                if stdout.strip():
                    print(stdout.strip())
                # clang-tidy's "N warnings treated as errors" summary goes to
                # stderr; keep it next to its findings.
                if stderr.strip():
                    print(stderr.strip(), file=sys.stderr)
            else:
                print(f"[ok]   {rel}")

    if failures:
        print(f"{failures} of {len(units)} translation units had findings",
              file=sys.stderr)
        return 1
    print(f"all {len(units)} translation units clean under "
          f"{os.path.basename(clang_tidy)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
