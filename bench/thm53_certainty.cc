// THM 5.3 — certainty.
//
//   (1) PTIME for DATALOG queries on g-tables: the matrix is evaluated as
//       if complete ([10, 17]); scales to thousands of rows with recursion.
//   (2) coNP-complete for a fixed first order query on a Codd-table
//       (3DNF tautology).
//   (3) coNP-complete already for the identity on a c-table.
// Also demonstrates Prop. 2.1(6): CERT(*) via k rounds of CERT(1).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/certainty.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, /*num_edb=*/1);
  DatalogRule base;
  base.head = {1, Tuple{V(0), V(1)}};
  base.body = {{0, Tuple{V(0), V(1)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(0), V(2)}};
  step.body = {{1, Tuple{V(0), V(1)}}, {0, Tuple{V(1), V(2)}}};
  p.AddRule(step);
  return p;
}

// (1) PTIME: certain transitive closure over a chain with nulls.
void BM_Thm53_DatalogCertainty_PTIME(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Chain 0 -> 1 -> ... -> n with every third edge target a null.
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 2) {
      t.AddRow(Tuple{C(i), V(i)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  CDatabase db{t};
  View q = View::Datalog(TransitiveClosure(), {1});
  std::vector<LocatedFact> pattern = {{0, Fact{0, 1}}};
  bool got = false;
  for (auto _ : state) {
    auto r = CertDatalogGTables(q, db, pattern);
    got = r.value_or(false);
    benchmark::DoNotOptimize(r);
  }
  state.counters["certain"] = got ? 1 : 0;
  state.SetLabel("Thm 5.3(1): DATALOG on g-tables, PTIME");
}
BENCHMARK(BM_Thm53_DatalogCertainty_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

// (2) coNP: first order query on a Codd-table (3DNF tautology).
void BM_Thm53_FirstOrderCertainty_CoNP(benchmark::State& state) {
  auto rng = benchutil::Rng(81 + static_cast<uint32_t>(state.range(0)));
  int clauses = static_cast<int>(state.range(0));
  ClausalFormula dnf = RandomClausalFormula(3, clauses, 3, rng);
  TautologyFoInstance inst = TautologyToFirstOrderCertainty(dnf);
  bool expected = IsDnfTautology(dnf);
  bool got = expected;
  for (auto _ : state) {
    got = CertaintySearch(inst.certain_view, inst.database, inst.pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_dnf_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.3(2): first order on a table, coNP-complete");
}
BENCHMARK(BM_Thm53_FirstOrderCertainty_CoNP)
    ->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

// (3) coNP: identity on c-tables (through the clause-CSP procedure).
void BM_Thm53_CTableCertainty_CoNP(benchmark::State& state) {
  auto rng = benchutil::Rng(83 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  // The 3DNF-tautology c-table of Thm 3.2(3): (1) is certain iff tautology.
  ClausalFormula dnf = RandomClausalFormula(vars, 2 * vars, 3, rng);
  UniquenessInstance u = TautologyToCTableUniqueness(dnf);
  std::vector<LocatedFact> pattern = {{0, Fact{1}}};
  bool expected = IsDnfTautology(dnf);
  bool got = expected;
  for (auto _ : state) {
    got = Certainty(View::Identity(), u.database, pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_dnf_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.3(3): identity on c-table, coNP-complete");
}
BENCHMARK(BM_Thm53_CTableCertainty_CoNP)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMicrosecond);

// Prop 2.1(6): CERT(*) == k rounds of CERT(1).
void BM_Thm53_FactwiseEquivalence(benchmark::State& state) {
  auto rng = benchutil::Rng(89);
  int k = static_cast<int>(state.range(0));
  CTable t(2);
  for (int i = 0; i < 32; ++i) {
    t.AddRow(Tuple{C(i % 6), (i % 4 == 0) ? Term::Var(i) : C((i + 1) % 6)});
  }
  CDatabase db{t};
  std::uniform_int_distribution<int> c(0, 5);
  std::vector<LocatedFact> pattern;
  for (int i = 0; i < k; ++i) pattern.push_back({0, Fact{c(rng), c(rng)}});
  bool agree = true;
  for (auto _ : state) {
    bool direct = Certainty(View::Identity(), db, pattern);
    bool factwise = CertaintyFactwise(View::Identity(), db, pattern);
    agree = agree && (direct == factwise);
    benchmark::DoNotOptimize(direct);
  }
  state.counters["factwise_agrees"] = agree ? 1 : 0;
  state.SetLabel("Prop 2.1(6): CERT(*) == iterated CERT(1)");
}
BENCHMARK(BM_Thm53_FactwiseEquivalence)
    ->DenseRange(1, 8, 7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 5.3: certainty CERT",
      "Claim: PTIME for DATALOG on g-tables (evaluate the matrix as if "
      "complete); coNP-complete for a first order query on a Codd-table and "
      "for c-tables; CERT(*) reduces to iterated CERT(1) (Prop 2.1(6)).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
