// EXTENSION — hash joins over the shared tuple-index layer.
//
// The Imielinski–Lipski algebra spends its time in joins: Theorem 5.2(1)'s
// PTIME bound hides a |T1| x |T2| pair loop per product. This bench measures
// the planned join execution (ilalgebra/join_plan.h, tables/tuple_index.h,
// ilalgebra/ctable_eval.cc) against the paths it replaces, on wide equality
// joins — interned and plain paths, ground rows and null-laden rows (nulls
// at a join column land in the index's per-column wildcard levels and
// prefix-matching probes must revisit them).
//
// Two kinds of pairs, both gated by tools/check_bench_regression.py on the
// JSON output:
//
//   *_HashJoin / *_NestedLoop      binary planned join vs the seed nested
//                                  loop (fails CI past 2x);
//   *_PlannedJoin / *_BinaryFusion the n-ary planner (greedy reordering +
//                                  projection sink over row-id combos) vs
//                                  the PR 3 binary-only fusion baseline
//                                  (CTableEvalOptions::binary_join_only) on
//                                  a 4-way chain join whose written order
//                                  is pessimal — the selective filter sits
//                                  on the LAST relation, so the left-deep
//                                  baseline materializes large
//                                  intermediates the planner never builds.
//
// Build sides are relation refs, so across iterations the probes hit each
// CTable's cached index — the steady-state of repeated queries over a live
// table.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "ilalgebra/ctable_eval.h"
#include "tables/ctable.h"

namespace pw {
namespace {

/// L = chain edges (i, i+1), R = successor edges (i+1, i+2); join L.1 = R.0.
/// Every `null_gap`-th R row carries a fresh null at the join column.
CDatabase JoinInput(int n, int null_gap) {
  CTable l(2);
  CTable r(2);
  for (int i = 0; i < n; ++i) {
    l.AddRow(Tuple{C(i), C(i + 1)});
    if (null_gap > 0 && i % null_gap == null_gap - 1) {
      r.AddRow(Tuple{V(i), C(i + 2)});
    } else {
      r.AddRow(Tuple{C(i + 1), C(i + 2)});
    }
  }
  return CDatabase(std::vector<CTable>{std::move(l), std::move(r)});
}

void RunJoin(benchmark::State& state, const CDatabase& db, bool use_interner,
             bool use_hash_join, const char* label) {
  RaExpr q = RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2), {{1, 0}});
  CTableEvalStats stats;
  CTableEvalOptions options;
  options.use_interner = use_interner;
  options.use_hash_join = use_hash_join;
  size_t rows = 0;
  for (auto _ : state) {
    stats = {};
    CTableEvalOptions o = options;
    o.stats = &stats;
    auto out = EvalOnCTables(q, db, o);
    rows = out->num_rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["hits"] = static_cast<double>(stats.index_hits);
  state.counters["join_pairs"] = static_cast<double>(stats.join_pairs);
  state.counters["scan_pairs"] = static_cast<double>(stats.scan_pairs);
  state.SetLabel(label);
}

void BM_EquiJoin_Ground_Interned_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, true, true, "ground equi-join, interned hash join");
}
BENCHMARK(BM_EquiJoin_Ground_Interned_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Interned_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, true, false, "ground equi-join, interned nested loop");
}
BENCHMARK(BM_EquiJoin_Ground_Interned_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Plain_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, false, true, "ground equi-join, plain hash join");
}
BENCHMARK(BM_EquiJoin_Ground_Plain_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Plain_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, false, false, "ground equi-join, plain nested loop");
}
BENCHMARK(BM_EquiJoin_Ground_Plain_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

// Nulls at the build side's join column: every probe revisits the wildcard
// rows (their matches carry equality conditions), so the index prunes less
// and the interner carries more distinct conditions.
void BM_EquiJoin_Nulls_Interned_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/16);
  RunJoin(state, db, true, true, "null-laden equi-join, interned hash join");
}
BENCHMARK(BM_EquiJoin_Nulls_Interned_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Nulls_Interned_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/16);
  RunJoin(state, db, true, false,
          "null-laden equi-join, interned nested loop");
}
BENCHMARK(BM_EquiJoin_Nulls_Interned_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->Unit(benchmark::kMicrosecond);

// --- N-ary planner vs binary fusion ----------------------------------------

/// 4-way chain join a.1 = b.0, b.1 = c.0, c.1 = d.0 over fan-out-8 edges
/// (each join value is shared by n/m = 8 rows per side), with the selective
/// filter d.1 = const on the LAST relation in written order. Written
/// left-deep, the binary fusion executes Join(Join(Join(a,b),c),d) as
/// given: a |><| b materializes ~8n rows, (a |><| b) |><| c ~64n, and only
/// the final join meets the 1-row filtered d. The n-ary planner pushes the
/// filter into d, seeds the greedy order there, and walks the chain
/// backwards over row-id combinations — a few hundred probes, no
/// intermediate materialization.
CDatabase Chain4Input(int n) {
  int m = std::max(1, n / 8);
  CTable a(2);
  CTable b(2);
  CTable c(2);
  CTable d(2);
  for (int i = 0; i < n; ++i) {
    int v = i % m;
    a.AddRow(Tuple{C(100000 + i), C(v)});
    b.AddRow(Tuple{C(v), C(m + v)});
    c.AddRow(Tuple{C(m + v), C(2 * m + v)});
    d.AddRow(Tuple{C(2 * m + v), C(3 * m + i)});
  }
  return CDatabase(std::vector<CTable>{std::move(a), std::move(b),
                                       std::move(c), std::move(d)});
}

RaExpr Chain4Query(int n) {
  int m = std::max(1, n / 8);
  RaExpr j = RaExpr::Join(
      RaExpr::Join(
          RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2), {{1, 0}}),
          RaExpr::Rel(2, 2), {{3, 0}}),
      RaExpr::Rel(3, 2), {{5, 0}});
  return RaExpr::Select(
      j, {SelectAtom::Eq(ColOrConst::Col(7), ColOrConst::Const(3 * m))});
}

void RunChain4(benchmark::State& state, bool use_interner, bool binary_only,
               const char* label) {
  int n = static_cast<int>(state.range(0));
  CDatabase db = Chain4Input(n);
  RaExpr q = Chain4Query(n);
  CTableEvalStats stats;
  CTableEvalOptions options;
  options.use_interner = use_interner;
  options.binary_join_only = binary_only;
  size_t rows = 0;
  for (auto _ : state) {
    stats = {};
    CTableEvalOptions o = options;
    o.stats = &stats;
    auto out = EvalOnCTables(q, db, o);
    rows = out->num_rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["plans"] = static_cast<double>(stats.planned_joins);
  state.counters["steps"] = static_cast<double>(stats.hash_joins);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["join_pairs"] = static_cast<double>(stats.join_pairs);
  state.counters["sunk"] = static_cast<double>(stats.projections_sunk);
  state.SetLabel(label);
}

void BM_Chain4_SelectiveTail_Interned_PlannedJoin(benchmark::State& state) {
  RunChain4(state, true, false,
            "4-way chain, selective tail, interned n-ary planner");
}
BENCHMARK(BM_Chain4_SelectiveTail_Interned_PlannedJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_Chain4_SelectiveTail_Interned_BinaryFusion(benchmark::State& state) {
  RunChain4(state, true, true,
            "4-way chain, selective tail, interned binary-only fusion");
}
BENCHMARK(BM_Chain4_SelectiveTail_Interned_BinaryFusion)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_Chain4_SelectiveTail_Plain_PlannedJoin(benchmark::State& state) {
  RunChain4(state, false, false,
            "4-way chain, selective tail, plain n-ary planner");
}
BENCHMARK(BM_Chain4_SelectiveTail_Plain_PlannedJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_Chain4_SelectiveTail_Plain_BinaryFusion(benchmark::State& state) {
  RunChain4(state, false, true,
            "4-way chain, selective tail, plain binary-only fusion");
}
BENCHMARK(BM_Chain4_SelectiveTail_Plain_BinaryFusion)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "EXTENSION: planned joins on c-tables via the tuple-index layer",
      "Equality selections over products executed as planned hash joins "
      "(conjunct pushdown, greedy n-ary ordering, projection sink) vs the "
      "nested-loop product+select of the seed evaluator and vs the "
      "binary-only fusion baseline, on ground and null-laden wide joins, "
      "interned and plain paths.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
