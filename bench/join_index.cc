// EXTENSION — hash joins over the shared tuple-index layer.
//
// The Imielinski–Lipski algebra spends its time in joins: Theorem 5.2(1)'s
// PTIME bound hides a |T1| x |T2| pair loop per product. This bench measures
// the hash-join fusion of selection-over-product (tables/tuple_index.h,
// ilalgebra/ctable_eval.cc) against the nested loop it replaces, on wide
// equality joins — interned and plain paths, ground rows and null-laden rows
// (nulls at a join column land in the index's wildcard list and every probe
// must revisit them).
//
// Each workload runs as a *_HashJoin / *_NestedLoop pair; CI parses the JSON
// output and fails when the fused path regresses past 2x its seed pair
// (tools/check_bench_regression.py). The build side is a relation ref, so
// across iterations the probe hits the CTable's cached index — the
// steady-state of repeated queries over a live table.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ilalgebra/ctable_eval.h"
#include "tables/ctable.h"

namespace pw {
namespace {

/// L = chain edges (i, i+1), R = successor edges (i+1, i+2); join L.1 = R.0.
/// Every `null_gap`-th R row carries a fresh null at the join column.
CDatabase JoinInput(int n, int null_gap) {
  CTable l(2);
  CTable r(2);
  for (int i = 0; i < n; ++i) {
    l.AddRow(Tuple{C(i), C(i + 1)});
    if (null_gap > 0 && i % null_gap == null_gap - 1) {
      r.AddRow(Tuple{V(i), C(i + 2)});
    } else {
      r.AddRow(Tuple{C(i + 1), C(i + 2)});
    }
  }
  return CDatabase(std::vector<CTable>{std::move(l), std::move(r)});
}

void RunJoin(benchmark::State& state, const CDatabase& db, bool use_interner,
             bool use_hash_join, const char* label) {
  RaExpr q = RaExpr::Join(RaExpr::Rel(0, 2), RaExpr::Rel(1, 2), {{1, 0}});
  CTableEvalStats stats;
  CTableEvalOptions options;
  options.use_interner = use_interner;
  options.use_hash_join = use_hash_join;
  size_t rows = 0;
  for (auto _ : state) {
    stats = {};
    CTableEvalOptions o = options;
    o.stats = &stats;
    auto out = EvalOnCTables(q, db, o);
    rows = out->num_rows();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["hits"] = static_cast<double>(stats.index_hits);
  state.counters["join_pairs"] = static_cast<double>(stats.join_pairs);
  state.counters["scan_pairs"] = static_cast<double>(stats.scan_pairs);
  state.SetLabel(label);
}

void BM_EquiJoin_Ground_Interned_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, true, true, "ground equi-join, interned hash join");
}
BENCHMARK(BM_EquiJoin_Ground_Interned_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Interned_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, true, false, "ground equi-join, interned nested loop");
}
BENCHMARK(BM_EquiJoin_Ground_Interned_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Plain_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, false, true, "ground equi-join, plain hash join");
}
BENCHMARK(BM_EquiJoin_Ground_Plain_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Ground_Plain_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/0);
  RunJoin(state, db, false, false, "ground equi-join, plain nested loop");
}
BENCHMARK(BM_EquiJoin_Ground_Plain_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->Unit(benchmark::kMicrosecond);

// Nulls at the build side's join column: every probe revisits the wildcard
// rows (their matches carry equality conditions), so the index prunes less
// and the interner carries more distinct conditions.
void BM_EquiJoin_Nulls_Interned_HashJoin(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/16);
  RunJoin(state, db, true, true, "null-laden equi-join, interned hash join");
}
BENCHMARK(BM_EquiJoin_Nulls_Interned_HashJoin)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_EquiJoin_Nulls_Interned_NestedLoop(benchmark::State& state) {
  CDatabase db = JoinInput(static_cast<int>(state.range(0)), /*null_gap=*/16);
  RunJoin(state, db, true, false,
          "null-laden equi-join, interned nested loop");
}
BENCHMARK(BM_EquiJoin_Nulls_Interned_NestedLoop)
    ->RangeMultiplier(2)
    ->Range(64, 256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "EXTENSION: hash joins on c-tables via the tuple-index layer",
      "Equality selections over products fused into hash joins on the bound "
      "columns (selection pushdown included) vs the nested-loop "
      "product+select of the seed evaluator, on ground and null-laden wide "
      "joins, interned and plain paths.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
