// Shared helpers for the pworlds benchmark harness.
//
// Every bench binary prints a short reproduction header (what the paper
// claims, what we verify) before handing control to google-benchmark, so the
// saved bench output doubles as the EXPERIMENTS.md evidence.

#ifndef PW_BENCH_BENCH_UTIL_H_
#define PW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <random>
#include <string>

namespace pw::benchutil {

inline void Header(const char* id, const char* claim) {
  std::printf("=== %s ===\n%s\n", id, claim);
}

inline void Line(const std::string& s) { std::printf("%s\n", s.c_str()); }

inline std::mt19937 Rng(uint32_t seed) { return std::mt19937(seed); }

}  // namespace pw::benchutil

#endif  // PW_BENCH_BENCH_UTIL_H_
