// FIG2 — the 7x7 complexity matrix of the containment problem.
//
// Prints the paper's predicted complexity class for every (subset-side,
// superset-side) representation pair, then benchmarks the dispatcher on
// generated instances of each landmark cell:
//   - g-table in Codd-table      : PTIME (freezing + matching, Thm 4.1(3))
//   - g-table in e-table         : NP    (freezing + search,  Thm 4.1(2))
//   - view   in Codd-table       : coNP  (forall-loop + matching, 4.1(1))
//   - Codd-table in i-table      : Pi2p  (Thm 4.2(1))
// The PTIME cell is swept to large sizes; hard cells to small sizes, where
// the exponential blow-up is already visible.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/complexity_map.h"
#include "decision/containment.h"
#include "reductions/forall_exists.h"
#include "solvers/qbf.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

void PrintMatrix() {
  using benchutil::Line;
  const RepKind kinds[] = {RepKind::kInstance, RepKind::kCoddTable,
                           RepKind::kETable,   RepKind::kITable,
                           RepKind::kGTable,   RepKind::kCTable,
                           RepKind::kView};
  std::string header = "  subset\\superset";
  for (RepKind rhs : kinds) header += "\t" + ToString(rhs);
  Line(header);
  for (RepKind lhs : kinds) {
    std::string row = "  " + ToString(lhs);
    for (RepKind rhs : kinds) {
      row += "\t" + ToString(ContainmentComplexity(lhs, rhs));
    }
    Line(row);
  }
}

/// A random Codd table with `rows` rows, arity 2 (mix of constants and
/// unique variables).
CTable RandomCodd(int rows, std::mt19937& rng) {
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 4;
  options.num_variables = 1'000'000;  // unique with overwhelming probability
  options.variable_probability = 0.5;
  return RandomCTable(options, rng);
}

// PTIME cell: g-table contained in Codd-table, scaling the row count.
void BM_Fig2_GTableInCodd_PTIME(benchmark::State& state) {
  auto rng = benchutil::Rng(1234);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 4;
  options.num_variables = rows;
  options.num_global_atoms = rows / 4;
  options.equality_probability = 0.5;
  CTable lhs_t = RandomCTable(options, rng);
  CDatabase lhs{lhs_t};
  // rhs generalizes lhs's frozen form, plus noise rows.
  CTable rhs_t(2);
  for (int i = 0; i < rows; ++i) {
    rhs_t.AddRow(Tuple{V(2'000'000 + 2 * i), V(2'000'000 + 2 * i + 1)});
  }
  CDatabase rhs{rhs_t};
  for (auto _ : state) {
    auto r = ContGTablesInCoddTables(lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("PTIME cell (Thm 4.1(3))");
}
BENCHMARK(BM_Fig2_GTableInCodd_PTIME)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Unit(benchmark::kMicrosecond);

// NP cell: g-table contained in e-table.
void BM_Fig2_GTableInETable_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(77);
  int rows = static_cast<int>(state.range(0));
  CTable lhs_t = RandomCodd(rows, rng);
  CDatabase lhs{lhs_t};
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 4;
  options.num_variables = 3;  // heavy repetition: e-table
  CTable rhs_t = RandomCTable(options, rng);
  CDatabase rhs{rhs_t};
  for (auto _ : state) {
    auto r = ContGTablesInETables(lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("NP cell (Thm 4.1(2))");
}
BENCHMARK(BM_Fig2_GTableInETable_NP)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

// coNP cell: positive existential view of a table contained in a Codd-table.
void BM_Fig2_ViewInCodd_CoNP(benchmark::State& state) {
  auto rng = benchutil::Rng(99);
  int rows = static_cast<int>(state.range(0));
  CTable lhs_t = RandomCodd(rows, rng);
  CDatabase lhs{lhs_t};
  View q = View::Ra({RaExpr::ProjectCols(RaExpr::Rel(0, 2), {1, 0})});
  CTable rhs_t(2);
  for (int i = 0; i < rows; ++i) {
    rhs_t.AddRow(Tuple{V(3'000'000 + 2 * i), V(3'000'000 + 2 * i + 1)});
  }
  CDatabase rhs{rhs_t};
  for (auto _ : state) {
    auto r = ContViewInCoddTables(q, lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("coNP cell (Thm 4.1(1))");
}
BENCHMARK(BM_Fig2_ViewInCodd_CoNP)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

// Pi2p cell: Codd-table contained in i-table (the striking Thm 4.2(1) cell),
// on forall-exists 3CNF instances of growing universal width.
void BM_Fig2_TableInITable_Pi2p(benchmark::State& state) {
  auto rng = benchutil::Rng(4242);
  int nx = static_cast<int>(state.range(0));
  ForallExistsCnf qbf = RandomForallExists(nx, 2, 3, rng);
  ContainmentInstance inst = ForallExistsToTableInITable(qbf);
  bool expected = SolveForallExists(qbf);
  bool got = expected;
  for (auto _ : state) {
    got = Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_qbf_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Pi2p cell (Thm 4.2(1))");
}
BENCHMARK(BM_Fig2_TableInITable_Pi2p)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "FIG2: the complexity of the containment problem",
      "Claim (Fig. 2): CONT spans PTIME / NP / coNP / Pi2p depending on the "
      "two representations. Matrix of predicted classes:");
  pw::PrintMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
