// EXTENSION — conditioned DATALOG on c-tables.
//
// The paper observes (Section 5, discussion of Theorem 5.2) that positive
// existential views embed into c-tables without exponential growth, while
// "this growth may be unavoidable for first order and DATALOG queries".
// This bench measures exactly that: the conditioned transitive-closure
// fixpoint on a null-laden chain, reporting rows derived and subsumption
// work, against the same program on ground data.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/eval.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/ctable.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

/// Chain 0 -> 1 -> ... -> n where every `gap`-th edge goes through a null.
CDatabase NullChain(int n, int gap) {
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (gap > 0 && i % gap == gap - 1) {
      t.AddRow(Tuple{C(i), V(i)});
      t.AddRow(Tuple{V(i), C(i + 1)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  return CDatabase{t};
}

void BM_ConditionedTC_GroundChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CDatabase db = NullChain(n, /*gap=*/0);
  DatalogProgram tc = TransitiveClosure();
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    CDatabase out = DatalogOnCTables(tc, db, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.SetLabel("ground chain (baseline)");
}
BENCHMARK(BM_ConditionedTC_GroundChain)
    ->DenseRange(8, 32, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_NullChain(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CDatabase db = NullChain(n, /*gap=*/3);
  DatalogProgram tc = TransitiveClosure();
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    CDatabase out = DatalogOnCTables(tc, db, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.counters["subsumed"] = static_cast<double>(stats.subsumed_rows);
  state.SetLabel("null chain (lineage growth)");
}
// Lineage growth is exponential in the number of nulls (every pair of null
// endpoints yields conditional cross-paths); cap the sweep where one point
// still finishes in seconds.
BENCHMARK(BM_ConditionedTC_NullChain)
    ->DenseRange(6, 12, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "EXTENSION: conditioned DATALOG fixpoint on c-tables",
      "The paper: c-table images of DATALOG queries exist but 'this growth "
      "may be unavoidable'. Compare derived-row counts on ground vs "
      "null-laden chains under conditioned transitive closure.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
