// EXTENSION — conditioned DATALOG on c-tables.
//
// The paper observes (Section 5, discussion of Theorem 5.2) that positive
// existential views embed into c-tables without exponential growth, while
// "this growth may be unavoidable for first order and DATALOG queries".
// This bench measures exactly that: the conditioned transitive-closure
// fixpoint on null-laden chains, reporting rows derived, subsumption and
// duplicate-suppression work.
//
// Each workload runs under both strategies — the interned semi-naive
// fixpoint (the default) and the naive seed strategy — as *_SemiNaive /
// *_Naive pairs; CI parses the JSON output and fails when the fast path
// regresses past 2x its seed pair (tools/check_bench_regression.py). The
// SharedNullChain workload repeats the same few conditions across rows,
// which is where interning (memoized And, duplicate ids) pays off most.
// The *_Magic / *_FullFixpoint pair measures query-directed evaluation: a
// selective point query answered through the magic-set rewrite against the
// full fixpoint restricted afterwards. The *_Incremental / *_Recompute pair
// measures incremental view maintenance: an update stream folded into a
// maintained MaterializedView against rerunning the fixpoint from scratch
// after every update.

#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.h"
#include "datalog/eval.h"
#include "datalog/ivm.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/ctable.h"
#include "tables/updates.h"

namespace pw {
namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

/// Chain 0 -> 1 -> ... -> n where every `gap`-th edge goes through a null.
/// With `shared` the same null is reused for every gap (repeated
/// conditions); otherwise each gap gets a fresh null (condition diversity).
CDatabase NullChain(int n, int gap, bool shared = false) {
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (gap > 0 && i % gap == gap - 1) {
      VarId null = shared ? 0 : i;
      t.AddRow(Tuple{C(i), V(null)});
      t.AddRow(Tuple{V(null), C(i + 1)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  return CDatabase{t};
}

void RunFixpoint(benchmark::State& state, const CDatabase& db,
                 bool semi_naive, const char* label, bool use_index = true,
                 ConditionBackendKind backend = ConditionBackendKind::kDefault) {
  DatalogProgram tc = TransitiveClosure();
  DatalogCTableOptions options;
  options.semi_naive = semi_naive;
  options.use_index = use_index;
  options.condition_backend = backend;
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    CDatabase out = DatalogOnCTables(tc, db, &stats, options);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.counters["subsumed"] = static_cast<double>(stats.subsumed_rows);
  state.counters["dups"] = static_cast<double>(stats.duplicate_rows);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["probes"] = static_cast<double>(stats.index_probes);
  state.counters["hits"] = static_cast<double>(stats.index_hits);
  state.SetLabel(label);
}

void BM_ConditionedTC_GroundChain_SemiNaive(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  RunFixpoint(state, db, true, "ground chain, semi-naive interned");
}
BENCHMARK(BM_ConditionedTC_GroundChain_SemiNaive)
    ->DenseRange(8, 32, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_GroundChain_Naive(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  RunFixpoint(state, db, false, "ground chain, naive seed strategy");
}
BENCHMARK(BM_ConditionedTC_GroundChain_Naive)
    ->DenseRange(8, 32, 8)
    ->Unit(benchmark::kMicrosecond);

// Lineage growth is exponential in the number of nulls (every pair of null
// endpoints yields conditional cross-paths); this semi-naive/naive pair
// stays at the smoke sizes because the naive seed strategy pays the
// exponential antichain twice over. The un-capped diversity sweep lives in
// the *_NullChainDiversity_DDBackend / _Antichain pair below, where the
// decision-diagram backend keeps the large sizes tractable.
void BM_ConditionedTC_NullChain_SemiNaive(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/3);
  RunFixpoint(state, db, true, "null chain, semi-naive interned");
}
BENCHMARK(BM_ConditionedTC_NullChain_SemiNaive)
    ->DenseRange(6, 9, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_NullChain_Naive(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/3);
  RunFixpoint(state, db, false, "null chain, naive seed strategy");
}
BENCHMARK(BM_ConditionedTC_NullChain_Naive)
    ->DenseRange(6, 9, 3)
    ->Unit(benchmark::kMicrosecond);

// Indexed vs scan-based body-atom matching, both semi-naive: the step rule
// q(x,z) :- q(x,y), p(y,z) matches each delta row against p through the hash
// index on p's first column instead of scanning all n edges — the
// O(n + output) vs O(n * delta) join loop. Paired as *_IndexedJoin /
// *_ScanJoin for the CI gate.
void BM_ConditionedTC_GroundChain_IndexedJoin(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  RunFixpoint(state, db, true, "ground chain, semi-naive indexed join",
              /*use_index=*/true);
}
BENCHMARK(BM_ConditionedTC_GroundChain_IndexedJoin)
    ->DenseRange(8, 32, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_GroundChain_ScanJoin(benchmark::State& state) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  RunFixpoint(state, db, true, "ground chain, semi-naive scan join",
              /*use_index=*/false);
}
BENCHMARK(BM_ConditionedTC_GroundChain_ScanJoin)
    ->DenseRange(8, 32, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_SharedNullChain_IndexedJoin(benchmark::State& state) {
  CDatabase db =
      NullChain(static_cast<int>(state.range(0)), /*gap=*/3, /*shared=*/true);
  RunFixpoint(state, db, true, "shared-null chain, semi-naive indexed join",
              /*use_index=*/true);
}
BENCHMARK(BM_ConditionedTC_SharedNullChain_IndexedJoin)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_SharedNullChain_ScanJoin(benchmark::State& state) {
  CDatabase db =
      NullChain(static_cast<int>(state.range(0)), /*gap=*/3, /*shared=*/true);
  RunFixpoint(state, db, true, "shared-null chain, semi-naive scan join",
              /*use_index=*/false);
}
BENCHMARK(BM_ConditionedTC_SharedNullChain_ScanJoin)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

// Demand-driven (magic-set) point query: who does node 0 reach? The full
// fixpoint derives all O(n^2) transitive-closure facts before restricting to
// the goal; the magic-set rewrite (DatalogQueryOnCTables, use_magic) derives
// only the O(n) demand-reachable ones. Paired as *_Magic / *_FullFixpoint
// for the CI gate — the magic path must stay well under the 2x budget (it is
// expected to be >= 10x faster at the largest smoke size).
void RunPointQuery(benchmark::State& state, bool use_magic,
                   const char* label) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  DatalogProgram tc = TransitiveClosure();
  std::vector<std::optional<ConstId>> bindings{ConstId{0}, std::nullopt};
  DatalogCTableOptions options;
  options.use_magic = use_magic;
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    CTable out = DatalogQueryOnCTables(tc, db, /*goal=*/1, bindings, &stats,
                                       options);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["magic_facts"] = static_cast<double>(stats.magic_facts);
  state.counters["rules_adorned"] = static_cast<double>(stats.rules_adorned);
  state.counters["demand_pruned"] = static_cast<double>(stats.demand_pruned);
  state.SetLabel(label);
}

void BM_ConditionedTC_PointQuery_Magic(benchmark::State& state) {
  RunPointQuery(state, /*use_magic=*/true,
                "tc(0, ?) on a ground chain, magic-set demand evaluation");
}
BENCHMARK(BM_ConditionedTC_PointQuery_Magic)
    ->DenseRange(64, 256, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_PointQuery_FullFixpoint(benchmark::State& state) {
  RunPointQuery(state, /*use_magic=*/false,
                "tc(0, ?) on a ground chain, full fixpoint then restrict");
}
BENCHMARK(BM_ConditionedTC_PointQuery_FullFixpoint)
    ->DenseRange(64, 256, 64)
    ->Unit(benchmark::kMicrosecond);

// Live updates: a stream of edge insertions extending the chain, with a
// delete + reinsert of an existing edge every 24th step. The incremental
// side maintains one MaterializedView (datalog/ivm.h): each insertion seeds
// the converged semi-naive state and resumes, so the cost tracks the
// insertion's derivation cone; each deletion takes the covered fast path or
// the cone over-delete/re-derive. The recompute side applies the same
// updates to the base table and reruns the full fixpoint from scratch after
// every one. Both sides pay the initial materialization inside the timed
// region. Paired as *_Incremental / *_Recompute for the CI gate — the
// maintained view must stay well under the 2x budget (expected >= 5x faster
// at the smoke sizes).
void RunUpdateStream(benchmark::State& state, bool incremental,
                     const char* label) {
  const int n = static_cast<int>(state.range(0));
  DatalogProgram tc = TransitiveClosure();
  size_t derived = 0;
  size_t covered = 0;
  size_t rebuilds = 0;
  for (auto _ : state) {
    CDatabase db = NullChain(n, /*gap=*/0);
    if (incremental) {
      MaterializedView view(tc, db);
      for (int u = 0; u < n; ++u) {
        if (u % 24 == 23) {
          Fact edge{u, u + 1};
          view.Delete(0, edge);
          view.Insert(0, edge);
        } else {
          view.Insert(0, {n + u, n + u + 1});
        }
      }
      benchmark::DoNotOptimize(view);
      IvmStats stats = view.stats();
      derived = stats.fixpoint.derived_rows;
      covered = stats.deletes_covered;
      rebuilds = stats.cone_rebuilds;
    } else {
      CTable base = db.table(0);
      derived = 0;
      for (int u = 0; u < n; ++u) {
        if (u % 24 == 23) {
          Fact edge{u, u + 1};
          DeleteFactInPlace(base, edge);
          InsertFactInPlace(base, edge);
        } else {
          InsertFactInPlace(base, {n + u, n + u + 1});
        }
        ConditionedFixpointStats stats;
        CDatabase out = DatalogOnCTables(tc, CDatabase{base}, &stats);
        benchmark::DoNotOptimize(out);
        derived += stats.derived_rows;
      }
    }
  }
  state.counters["rows"] = static_cast<double>(derived);
  if (incremental) {
    state.counters["covered"] = static_cast<double>(covered);
    state.counters["rebuilds"] = static_cast<double>(rebuilds);
  }
  state.SetLabel(label);
}

void BM_ConditionedTC_UpdateStream_Incremental(benchmark::State& state) {
  RunUpdateStream(state, /*incremental=*/true,
                  "edge-update stream, maintained view (IVM)");
}
BENCHMARK(BM_ConditionedTC_UpdateStream_Incremental)
    ->DenseRange(32, 64, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_UpdateStream_Recompute(benchmark::State& state) {
  RunUpdateStream(state, /*incremental=*/false,
                  "edge-update stream, full recompute per update");
}
BENCHMARK(BM_ConditionedTC_UpdateStream_Recompute)
    ->DenseRange(32, 64, 32)
    ->Unit(benchmark::kMicrosecond);

// The antichain blowup, head-on: with a fresh null every gap, the lineage of
// a far-reachable tuple is a disjunction over exponentially many equality
// patterns, and the conjunctive backend keeps each disjunct as its own
// antichain row. The decision-diagram backend keeps ONE row per tuple whose
// condition is a hash-consed diagram, so And/Or stay polynomial in diagram
// size and the sweep runs un-capped past the sizes the *_SemiNaive/_Naive
// pair above must stop at. Each iteration evaluates against a fresh private
// interner and freshly built base table, so both sides start cold — the
// comparison is backend vs backend, not warm memo tables vs a per-query
// diagram store. Paired as *_DDBackend / *_Antichain for the CI gate with a
// tightened 1.2x budget — DD must never lose the low-diversity sizes by
// more than 1.2x, and must beat the antichain by >= 5x at the largest size
// (tools/check_bench_regression.py enforces both).
void RunDiversitySweep(benchmark::State& state, ConditionBackendKind backend,
                       const char* label) {
  const int n = static_cast<int>(state.range(0));
  DatalogProgram tc = TransitiveClosure();
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    ConditionInterner interner;
    CDatabase db = NullChain(n, /*gap=*/3);
    DatalogCTableOptions options;
    options.interner = &interner;
    options.condition_backend = backend;
    CDatabase out = DatalogOnCTables(tc, db, &stats, options);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.counters["subsumed"] = static_cast<double>(stats.subsumed_rows);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.SetLabel(label);
}

void BM_ConditionedTC_NullChainDiversity_DDBackend(benchmark::State& state) {
  RunDiversitySweep(state, ConditionBackendKind::kDecisionDiagrams,
                    "null chain, semi-naive, decision diagrams");
}
BENCHMARK(BM_ConditionedTC_NullChainDiversity_DDBackend)
    ->DenseRange(6, 12, 3)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_NullChainDiversity_Antichain(benchmark::State& state) {
  RunDiversitySweep(state, ConditionBackendKind::kConjunctions,
                    "null chain, semi-naive, antichain rows");
}
BENCHMARK(BM_ConditionedTC_NullChainDiversity_Antichain)
    ->DenseRange(6, 12, 3)
    ->Unit(benchmark::kMicrosecond);

// Stratum scheduling on a layered multi-SCC program: transitive closure at
// the bottom (the only recursive SCC), then a cascade of nonrecursive join
// layers, plus a dead rule guarded by a rule-less predicate. The monolithic
// schedule sweeps every rule in every delta round until the whole program
// converges; the stratum schedule (the default) evaluates SCCs in
// topological order — delta rounds confined to the bottom SCC, one pass per
// nonrecursive layer, the dead rule skipped outright. Same rows either way
// (the differential suite pins the identity); this pair measures the
// scheduling overhead shed. Paired as *_StratumSched / *_Monolithic for the
// CI gate.
DatalogProgram LayeredCascade() {
  constexpr int kLayers = 6;
  // Predicates: 0 = edge (EDB), 1 = tc (recursive), 2..1+kLayers the
  // nonrecursive cascade, 2+kLayers = barren (no rules; bodies naming it
  // are dead).
  const int barren = 2 + kLayers;
  DatalogProgram p(std::vector<int>(static_cast<size_t>(barren) + 1, 2), 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  for (int l = 0; l < kLayers; ++l) {
    const int head = 2 + l;
    DatalogRule copy;
    copy.head = {head, Tuple{V(100), V(101)}};
    copy.body = {{head - 1, Tuple{V(100), V(101)}}};
    p.AddRule(copy);
    DatalogRule join;
    join.head = {head, Tuple{V(100), V(102)}};
    join.body = {{head - 1, Tuple{V(100), V(101)}},
                 {0, Tuple{V(101), V(102)}}};
    p.AddRule(join);
  }
  DatalogRule dead;
  dead.head = {2 + kLayers - 1, Tuple{V(100), V(101)}};
  dead.body = {{1, Tuple{V(100), V(101)}}, {barren, Tuple{V(100), V(101)}}};
  p.AddRule(dead);
  return p;
}

void RunLayered(benchmark::State& state, bool stratum, const char* label) {
  CDatabase db = NullChain(static_cast<int>(state.range(0)), /*gap=*/0);
  DatalogProgram cascade = LayeredCascade();
  DatalogCTableOptions options;
  options.stratum_schedule = stratum;
  ConditionedFixpointStats stats;
  for (auto _ : state) {
    CDatabase out = DatalogOnCTables(cascade, db, &stats, options);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(stats.derived_rows);
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["strata"] = static_cast<double>(stats.strata);
  state.counters["dead_skipped"] =
      static_cast<double>(stats.dead_rules_skipped);
  state.SetLabel(label);
}

void BM_ConditionedLayers_Cascade_StratumSched(benchmark::State& state) {
  RunLayered(state, /*stratum=*/true,
             "layered cascade, SCC-scheduled semi-naive");
}
BENCHMARK(BM_ConditionedLayers_Cascade_StratumSched)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedLayers_Cascade_Monolithic(benchmark::State& state) {
  RunLayered(state, /*stratum=*/false,
             "layered cascade, monolithic all-rules semi-naive");
}
BENCHMARK(BM_ConditionedLayers_Cascade_Monolithic)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

// One shared null across every gap: the same handful of conditions recurs in
// every derivation, so the memoized And/Implies caches and the (tuple, id)
// duplicate check carry the load.
void BM_ConditionedTC_SharedNullChain_SemiNaive(benchmark::State& state) {
  CDatabase db =
      NullChain(static_cast<int>(state.range(0)), /*gap=*/3, /*shared=*/true);
  RunFixpoint(state, db, true, "shared-null chain, semi-naive interned");
}
BENCHMARK(BM_ConditionedTC_SharedNullChain_SemiNaive)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_ConditionedTC_SharedNullChain_Naive(benchmark::State& state) {
  CDatabase db =
      NullChain(static_cast<int>(state.range(0)), /*gap=*/3, /*shared=*/true);
  RunFixpoint(state, db, false, "shared-null chain, naive seed strategy");
}
BENCHMARK(BM_ConditionedTC_SharedNullChain_Naive)
    ->DenseRange(8, 24, 8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "EXTENSION: conditioned DATALOG fixpoint on c-tables",
      "The paper: c-table images of DATALOG queries exist but 'this growth "
      "may be unavoidable'. Compare semi-naive interned vs naive evaluation "
      "on ground, null-laden, and shared-null chains under conditioned "
      "transitive closure.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
