// EXTENSION — concurrent query-service throughput.
//
// Measures the serving stack of examples/pwserve.cpp: reader threads
// answering possibility/certainty queries against snapshots of a
// VersionedCDatabase, with every condition resolved through one shared
// ConditionInterner (frozen tables, warmed id caches). Two families:
//
//   BM_ServeThroughput_Snapshot/T — T reader threads (a ThreadPool; the
//     timed region fans T*8 query slots across them) over published
//     snapshots. The JSON items_per_second (queries/sec against real time)
//     is the scaling signal: CI fails when 4 threads do not beat 1 thread
//     by the --min-scale factor (tools/check_bench_regression.py), i.e.
//     when a lock serializes the readers and scaling collapses.
//
//   BM_ServeThroughput_Direct/1 — the same query sequence, single thread,
//     against a plain (unfrozen, unshared) CDatabase with the thread-local
//     interner: the seed path. Paired as *_Snapshot/1 vs *_Direct/1 in the
//     regression gate, bounding the absolute overhead of the sharing
//     machinery (shard locks, frozen-cache indirection) on one thread.
//
// The writer is outside the timed region: mutations run between iterations
// (publishing a fresh version each time) so reads hit live, recently-
// published versions, while the timed signal stays pure read throughput —
// that is what the scaling gate needs to be stable on small CI runners.

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "bench_util.h"
#include "condition/interner.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "tables/ctable.h"
#include "tables/snapshot.h"
#include "tables/updates.h"
#include "util/thread_pool.h"

namespace pw {
namespace {

constexpr int kChain = 32;
constexpr int kNullGap = 6;
constexpr size_t kSlotsPerThread = 8;
constexpr size_t kQueriesPerSlot = 32;

/// Edge chain 0 -> 1 -> ... -> n, every `gap`-th edge through a shared
/// null — the pwserve workload, small enough for fast decision calls but
/// with real conditions in play.
CDatabase EdgeChain(int n, int gap) {
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (gap > 0 && i % gap == gap - 1) {
      t.AddRow(Tuple{C(i), V(0)});
      t.AddRow(Tuple{V(0), C(i + 1)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  return CDatabase{t};
}

/// One slot's query burst: alternating possibility/certainty point
/// patterns, deterministic per (slot, round) so every configuration runs
/// the same total work.
size_t RunQuerySlot(const CDatabase& db, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, kChain);
  size_t yes = 0;
  for (size_t q = 0; q < kQueriesPerSlot; ++q) {
    std::vector<LocatedFact> pattern = {{0, Fact{node(rng), node(rng)}}};
    if (q % 2 == 0) {
      yes += Possibility(View::Identity(), db, pattern);
    } else {
      yes += Certainty(View::Identity(), db, pattern);
    }
  }
  return yes;
}

void BM_ServeThroughput_Snapshot(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  ConditionInterner interner;
  VersionedCDatabase versioned(EdgeChain(kChain, kNullGap), interner);
  ConditionInterner::SetProcessShared(&interner);
  ThreadPool pool(threads);

  const size_t slots = kSlotsPerThread * threads;
  std::mt19937 writer_rng(7);
  std::uniform_int_distribution<int> writer_node(0, kChain - 1);
  uint32_t round = 0;
  for (auto _ : state) {
    pool.ParallelFor(slots, [&](size_t slot, size_t) {
      // Each slot reads its own snapshot, like an independent request.
      VersionedCDatabase::Snapshot snap = versioned.Read();
      benchmark::DoNotOptimize(
          RunQuerySlot(snap.db, round * 10007 + static_cast<uint32_t>(slot)));
    });
    // Publish a fresh version between iterations (untimed): keeps the COW
    // and re-freeze paths hot without polluting the scaling signal.
    state.PauseTiming();
    int u = writer_node(writer_rng);
    versioned.Mutate([&](CDatabase& db) {
      if (u % 4 == 3) {
        DeleteFactInPlace(db.mutable_table(0), Fact{u, u + 1});
      } else {
        InsertFactInPlace(db.mutable_table(0), Fact{u, u + 1});
      }
    });
    ++round;
    state.ResumeTiming();
  }
  ConditionInterner::SetProcessShared(nullptr);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(slots * kQueriesPerSlot));
  state.counters["versions"] = static_cast<double>(versioned.version());
  state.SetLabel("snapshot reads, shared interner, " +
                 std::to_string(threads) + " reader thread(s)");
}
BENCHMARK(BM_ServeThroughput_Snapshot)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServeThroughput_Direct(benchmark::State& state) {
  // The seed path: same query sequence as Snapshot/1, single thread, plain
  // tables, thread-local interner — no sharing machinery anywhere.
  CDatabase db = EdgeChain(kChain, kNullGap);
  const size_t slots = kSlotsPerThread;
  uint32_t round = 0;
  for (auto _ : state) {
    for (size_t slot = 0; slot < slots; ++slot) {
      benchmark::DoNotOptimize(
          RunQuerySlot(db, round * 10007 + static_cast<uint32_t>(slot)));
    }
    ++round;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(slots * kQueriesPerSlot));
  state.SetLabel("direct reads, single thread, thread-local interner");
}
BENCHMARK(BM_ServeThroughput_Direct)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "EXTENSION: concurrent query-service throughput",
      "Reader threads answer possibility/certainty queries against "
      "versioned snapshots over one shared condition interner; CI gates "
      "both the single-thread overhead vs the direct seed path and the "
      "4-thread scaling factor.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
