// THM 4.2 — containment lower bounds.
//
// Every Pi2p/coNP-hardness construction of Theorem 4.2, generated from
// forall-exists 3CNF (Stockmeyer) or 3DNF-tautology instances, decided by
// the exact containment procedures, and cross-checked against the
// brute-force QBF / DNF solvers:
//   (1) Codd-table in i-table            : Pi2p-complete
//   (2) Codd-table in pos. exist. view   : Pi2p-complete
//   (5) pos. exist. view in e-tables     : Pi2p-complete
//   (3) c-table in e-tables              : Pi2p-complete (via (5) + [10])
//   (4) pos. exist. view in Codd-table   : coNP-complete

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/containment.h"
#include "reductions/forall_exists.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "solvers/qbf.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

ForallExistsCnf MakeQbf(int nx, uint32_t seed) {
  auto rng = benchutil::Rng(seed);
  return RandomForallExists(nx, 2, 3, rng);
}

void RunContainment(benchmark::State& state, const ContainmentInstance& inst,
                    bool expected, const char* label) {
  bool got = expected;
  for (auto _ : state) {
    got = Containment(inst.lhs_view, inst.lhs, inst.rhs_view, inst.rhs);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel(label);
}

void BM_Thm421_TableInITable(benchmark::State& state) {
  ForallExistsCnf qbf =
      MakeQbf(static_cast<int>(state.range(0)),
              31 + static_cast<uint32_t>(state.range(0)));
  RunContainment(state, ForallExistsToTableInITable(qbf),
                 SolveForallExists(qbf),
                 "Thm 4.2(1): table in i-table, Pi2p");
}
BENCHMARK(BM_Thm421_TableInITable)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Thm422_TableInView(benchmark::State& state) {
  ForallExistsCnf qbf =
      MakeQbf(static_cast<int>(state.range(0)),
              37 + static_cast<uint32_t>(state.range(0)));
  RunContainment(state, ForallExistsToTableInViewOfTables(qbf),
                 SolveForallExists(qbf),
                 "Thm 4.2(2): table in view of tables, Pi2p");
}
BENCHMARK(BM_Thm422_TableInView)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Thm425_ViewInETables(benchmark::State& state) {
  ForallExistsCnf qbf =
      MakeQbf(static_cast<int>(state.range(0)),
              41 + static_cast<uint32_t>(state.range(0)));
  RunContainment(state, ForallExistsToViewOfTablesInETables(qbf),
                 SolveForallExists(qbf),
                 "Thm 4.2(5): view of tables in e-tables, Pi2p");
}
BENCHMARK(BM_Thm425_ViewInETables)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Thm423_CTableInETables(benchmark::State& state) {
  ForallExistsCnf qbf =
      MakeQbf(static_cast<int>(state.range(0)),
              43 + static_cast<uint32_t>(state.range(0)));
  RunContainment(state, ForallExistsToCTableInETables(qbf),
                 SolveForallExists(qbf),
                 "Thm 4.2(3): c-table in e-tables, Pi2p");
}
BENCHMARK(BM_Thm423_CTableInETables)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_Thm424_ViewInTable(benchmark::State& state) {
  auto rng = benchutil::Rng(47 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  ClausalFormula dnf = RandomClausalFormula(vars, vars + 1, 3, rng);
  ContainmentInstance inst = TautologyToViewInTableContainment(dnf);
  RunContainment(state, inst, IsDnfTautology(dnf),
                 "Thm 4.2(4): view of tables in Codd-table, coNP");
}
BENCHMARK(BM_Thm424_ViewInTable)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 4.2: containment lower bounds",
      "Claim: containment is Pi2p-complete already for a Codd-table against "
      "an i-table — 'the highest complexity is reached with a very small "
      "amount of expressibility' — and coNP-complete for a positive "
      "existential view against a Codd-table. All runs cross-checked "
      "against brute-force QBF / DNF-tautology solvers.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
