// SAT core: the CDCL engine against the seed recursive DPLL on the
// reduction-shaped stress corpus (reductions/sat_encode.h).
//
// Three families, each a *_Cdcl/*_Dpll pair gated by
// tools/check_bench_regression.py: planted 3-colorable graphs (satisfiable,
// the shape the colorability reductions emit), pigeonhole PHP(n+1, n)
// (unsatisfiable, needs clause learning), and the scrambled
// implication chain (pure propagation: watched literals walk it once, the
// seed DPLL re-scans the clause list per derived unit). The gate requires
// CDCL within 2x of DPLL everywhere and, on the chain family — where the
// asymptotic separation is deterministic — at least --cdcl-speedup-floor
// times faster at the largest size.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "reductions/sat_encode.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

SatOptions Engine(bool use_cdcl) {
  SatOptions options;
  options.use_cdcl = use_cdcl;
  return options;
}

void RunSolve(benchmark::State& state, const ClausalFormula& formula,
              bool use_cdcl, bool expected_sat, const char* label) {
  SatOptions options = Engine(use_cdcl);
  bool sat = !expected_sat;
  for (auto _ : state) {
    SatResult result = SolveCnf(formula, options);
    sat = result.sat;
    benchmark::DoNotOptimize(result);
  }
  state.counters["verdict_ok"] = (sat == expected_sat) ? 1 : 0;
  state.counters["vars"] = formula.num_vars;
  state.counters["clauses"] = static_cast<double>(formula.clauses.size());
  state.SetLabel(label);
}

ClausalFormula ColoringInstance(int nodes) {
  auto rng = benchutil::Rng(211u + static_cast<uint32_t>(nodes));
  return GraphColoringToCnf(RandomThreeColorableGraph(nodes, 0.5, rng), 3);
}

void BM_Coloring_Cdcl(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  RunSolve(state, ColoringInstance(nodes), /*use_cdcl=*/true,
           /*expected_sat=*/true, "planted 3-coloring, SAT");
}
BENCHMARK(BM_Coloring_Cdcl)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_Coloring_Dpll(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  RunSolve(state, ColoringInstance(nodes), /*use_cdcl=*/false,
           /*expected_sat=*/true, "planted 3-coloring, SAT (seed DPLL)");
}
BENCHMARK(BM_Coloring_Dpll)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_Pigeonhole_Cdcl(benchmark::State& state) {
  int holes = static_cast<int>(state.range(0));
  RunSolve(state, PigeonholeCnf(holes), /*use_cdcl=*/true,
           /*expected_sat=*/false, "PHP(n+1, n), UNSAT");
}
BENCHMARK(BM_Pigeonhole_Cdcl)->DenseRange(4, 6)->Unit(benchmark::kMicrosecond);

void BM_Pigeonhole_Dpll(benchmark::State& state) {
  int holes = static_cast<int>(state.range(0));
  RunSolve(state, PigeonholeCnf(holes), /*use_cdcl=*/false,
           /*expected_sat=*/false, "PHP(n+1, n), UNSAT (seed DPLL)");
}
BENCHMARK(BM_Pigeonhole_Dpll)->DenseRange(4, 6)->Unit(benchmark::kMicrosecond);

void BM_Chain_Cdcl(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  RunSolve(state, ScrambledImplicationChainCnf(length), /*use_cdcl=*/true,
           /*expected_sat=*/false, "scrambled implication chain, UNSAT");
}
BENCHMARK(BM_Chain_Cdcl)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Chain_Dpll(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  RunSolve(state, ScrambledImplicationChainCnf(length), /*use_cdcl=*/false,
           /*expected_sat=*/false,
           "scrambled implication chain, UNSAT (seed DPLL)");
}
BENCHMARK(BM_Chain_Dpll)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "SAT core: CDCL vs the seed DPLL",
      "Claim: the trail-based CDCL engine (watched literals, 1UIP learning, "
      "backjumping, restarts) dominates the seed recursive DPLL on the "
      "reduction-shaped corpus — planted 3-coloring, pigeonhole, and "
      "propagation-heavy implication chains — while logging checkable "
      "certificates. Gated: within 2x everywhere, and at least the "
      "--cdcl-speedup-floor factor faster at the largest chain size.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
