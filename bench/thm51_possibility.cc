// THM 5.1 — unbounded possibility.
//
//   (1) PTIME on Codd-tables via bipartite matching, scaling to thousands
//       of pattern facts.
//   (2) NP-complete on e-tables, (3) on i-tables: the 3CNF-satisfiability
//       reductions, cross-checked against DPLL.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/possibility.h"
#include "reductions/satisfiability.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// (1) PTIME.
void BM_Thm51_CoddPossibility_PTIME(benchmark::State& state) {
  auto rng = benchutil::Rng(51);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 8;
  options.num_variables = 10'000'000;
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  Instance pattern({RandomRelation(2, rows / 2, 8, rng)});
  for (auto _ : state) {
    auto r = PossUnboundedCoddTables(db, pattern);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 5.1(1): matching, PTIME");
}
BENCHMARK(BM_Thm51_CoddPossibility_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (2) NP on e-tables: 3CNF near the satisfiability threshold.
void BM_Thm51_ETablePossibility_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(53 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  ClausalFormula cnf = RandomClausalFormula(vars, 4 * vars, 3, rng);
  UnboundedPossibilityInstance inst = SatToETablePossibility(cnf);
  bool expected = IsSatisfiable(cnf);
  bool got = expected;
  for (auto _ : state) {
    got = PossibilityUnbounded(View::Identity(), inst.database, inst.pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_sat_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.1(2): e-table, NP-complete");
}
BENCHMARK(BM_Thm51_ETablePossibility_NP)
    ->DenseRange(3, 9, 2)
    ->Unit(benchmark::kMicrosecond);

// (3) NP on i-tables.
void BM_Thm51_ITablePossibility_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(59 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  ClausalFormula cnf = RandomClausalFormula(vars, 4 * vars, 3, rng);
  UnboundedPossibilityInstance inst = SatToITablePossibility(cnf);
  bool expected = IsSatisfiable(cnf);
  bool got = expected;
  for (auto _ : state) {
    got = PossibilityUnbounded(View::Identity(), inst.database, inst.pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_sat_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.1(3): i-table, NP-complete");
}
BENCHMARK(BM_Thm51_ITablePossibility_NP)
    ->DenseRange(3, 9, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 5.1: unbounded possibility POSS(*, -)",
      "Claim: PTIME on Codd-tables (matching saturating the pattern); "
      "NP-complete already for a single e-table or i-table "
      "(3CNF satisfiability).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
