// THM 5.2 — bounded possibility.
//
//   (1) PTIME for fixed k, positive existential q on c-tables, via the
//       Imielinski–Lipski image: polynomial scaling in the c-table size,
//       with the pattern size k as the (fixed) exponent.
//   (2) NP-complete for a fixed first order query on Codd-tables
//       (3DNF non-tautology), and
//   (3) NP-complete for a fixed DATALOG query on Codd-tables
//       (3CNF satisfiability through the Fig. 12 gadget graph).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/possibility.h"
#include "ilalgebra/ctable_eval.h"
#include "reductions/datalog_gadget.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "solvers/sat.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// (1) PTIME in the table size for fixed k.
void BM_Thm52_BoundedPosExist_TableSweep(benchmark::State& state) {
  auto rng = benchutil::Rng(61);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 6;
  options.num_variables = rows / 2 + 1;
  options.num_local_atoms = 1;
  options.num_global_atoms = 2;
  options.equality_probability = 0.2;
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  RaQuery q = {RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Neq(ColOrConst::Col(0),
                                      ColOrConst::Col(1))}),
      {0, 1})};
  std::vector<LocatedFact> pattern = {{0, {0, 1}}, {0, {2, 3}}};
  for (auto _ : state) {
    auto r = PossBoundedPosExistential(q, db, pattern);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 5.2(1): k = 2 fixed, sweep |T|, PTIME");
}
BENCHMARK(BM_Thm52_BoundedPosExist_TableSweep)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (1') the exponent: sweep k at fixed table size.
void BM_Thm52_BoundedPosExist_PatternSweep(benchmark::State& state) {
  auto rng = benchutil::Rng(67);
  int k = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = 48;
  options.num_constants = 6;
  options.num_variables = 16;
  options.num_local_atoms = 1;
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  RaQuery q = {RaExpr::Rel(0, 2)};
  std::uniform_int_distribution<int> c(0, 5);
  std::vector<LocatedFact> pattern;
  for (int i = 0; i < k; ++i) pattern.push_back({0, Fact{c(rng), c(rng)}});
  for (auto _ : state) {
    auto r = PossBoundedPosExistential(q, db, pattern);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 5.2(1): sweep k at |T| = 48");
}
BENCHMARK(BM_Thm52_BoundedPosExist_PatternSweep)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

// (1'') The engine behind (1), isolated: the Imielinski–Lipski image with
// the interned-condition fast path vs the raw seed path. The self-join
// product conjoins |T|^2 pairs of local conditions drawn from a small pool,
// so conditions repeat heavily — the workload the interner's pairwise And
// cache and canonicalization are built for. The seed path re-concatenates
// and re-checks every pair from scratch.

CDatabase RepeatedConditionDb(int rows, std::mt19937& rng) {
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 3;   // small pools: local conditions repeat
  options.num_variables = 4;
  options.num_local_atoms = 2;
  options.num_global_atoms = 1;
  options.equality_probability = 0.3;
  return CDatabase{RandomCTable(options, rng)};
}

RaQuery SelfJoinQuery() {
  return {RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Product(RaExpr::Rel(0, 2), RaExpr::Rel(0, 2)),
                     {SelectAtom::Eq(ColOrConst::Col(1), ColOrConst::Col(2))}),
      {0, 3})};
}

void BM_Thm52_Image_SeedPath(benchmark::State& state) {
  auto rng = benchutil::Rng(79);
  CDatabase db = RepeatedConditionDb(static_cast<int>(state.range(0)), rng);
  RaQuery q = SelfJoinQuery();
  CTableEvalOptions options;
  options.use_interner = false;
  for (auto _ : state) {
    auto image = EvalQueryOnCTables(q, db, options);
    benchmark::DoNotOptimize(image);
  }
  state.SetLabel("IL image, raw conjunction path");
}
BENCHMARK(BM_Thm52_Image_SeedPath)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Thm52_Image_InternedPath(benchmark::State& state) {
  auto rng = benchutil::Rng(79);
  CDatabase db = RepeatedConditionDb(static_cast<int>(state.range(0)), rng);
  RaQuery q = SelfJoinQuery();
  CTableEvalOptions options;  // default: global interner
  // Reset the cumulative counters so and_hit_rate reflects only this
  // range's iterations (the cache contents themselves stay warm, as in a
  // long-running process).
  ConditionInterner::Global().ResetStats();
  for (auto _ : state) {
    auto image = EvalQueryOnCTables(q, db, options);
    benchmark::DoNotOptimize(image);
  }
  const auto& stats = ConditionInterner::Global().stats();
  state.counters["and_hit_rate"] =
      stats.and_calls == 0
          ? 0.0
          : static_cast<double>(stats.and_hits) / stats.and_calls;
  state.SetLabel("IL image, interned + memoized path");
}
BENCHMARK(BM_Thm52_Image_InternedPath)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMicrosecond);

// (2) NP for a fixed first order query (3DNF non-tautology).
void BM_Thm52_FirstOrderPossibility_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(71 + static_cast<uint32_t>(state.range(0)));
  int clauses = static_cast<int>(state.range(0));
  ClausalFormula dnf = RandomClausalFormula(3, clauses, 3, rng);
  TautologyFoInstance inst = TautologyToFirstOrderCertainty(dnf);
  bool expected = !IsDnfTautology(dnf);
  bool got = expected;
  for (auto _ : state) {
    got = PossibilitySearch(inst.possible_view, inst.database, inst.pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_dnf_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.2(2): first order view, NP-complete");
}
BENCHMARK(BM_Thm52_FirstOrderPossibility_NP)
    ->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

// (3) NP for a fixed DATALOG query (gadget graph of Fig. 12).
void BM_Thm52_DatalogPossibility_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(73 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  ClausalFormula cnf = RandomClausalFormula(vars, vars + 1, 3, rng);
  DatalogPossibilityInstance inst = SatToDatalogPossibility(cnf);
  bool expected = IsSatisfiable(cnf);
  bool got = expected;
  for (auto _ : state) {
    got = PossibilitySearch(inst.view, inst.database, inst.pattern);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_sat_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 5.2(3): DATALOG view, NP-complete");
}
BENCHMARK(BM_Thm52_DatalogPossibility_NP)
    ->DenseRange(2, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 5.2: bounded possibility POSS(k, q)",
      "Claim: PTIME for positive existential q on c-tables for fixed k "
      "(c-tables are a representation system, [10]); NP-complete already "
      "for POSS(1, q) when q is first order or DATALOG, on Codd-tables.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
