// THM 3.2 — the uniqueness problem.
//
//   (1) PTIME on g-tables: normalization + ground comparison; scales to
//       thousands of rows.
//   (2) PTIME for positive existential views of e-tables (the [10]-based
//       algorithm).
//   (3) coNP-complete on c-tables: the 3DNF-tautology reduction; exact
//       decision grows exponentially in the number of propositional
//       variables.
//   (4) coNP-complete for positive existential views with != of tables:
//       the non-3-colorability reduction.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/uniqueness.h"
#include "reductions/colorability.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "solvers/graph_color.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// (1) PTIME on g-tables.
void BM_Thm32_GTableUniq_PTIME(benchmark::State& state) {
  auto rng = benchutil::Rng(3);
  int rows = static_cast<int>(state.range(0));
  // Table with variables all forced to constants: unique by construction.
  CTable t(2);
  Conjunction global;
  Relation expected(2);
  std::uniform_int_distribution<int> c(0, 9);
  for (int i = 0; i < rows; ++i) {
    int a = c(rng);
    int b = c(rng);
    t.AddRow(Tuple{C(a), V(i)});
    global.Add(Eq(V(i), Term::Const(b)));
    expected.Insert(Fact{a, b});
  }
  t.SetGlobal(std::move(global));
  CDatabase db{t};
  Instance instance({expected});
  bool got = true;
  for (auto _ : state) {
    auto r = UniqGTables(db, instance);
    got = r.value_or(false);
    benchmark::DoNotOptimize(r);
  }
  state.counters["unique"] = got ? 1 : 0;
  state.SetLabel("Thm 3.2(1): g-table, PTIME");
}
BENCHMARK(BM_Thm32_GTableUniq_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (2) PTIME for positive existential views of e-tables.
void BM_Thm32_PosExistViewUniq_PTIME(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  // T0 = {(1, x_i)}: q = pi_const-1(sigma_{c0=1}(R)) is uniquely {(1)}.
  CTable t(2);
  for (int i = 0; i < rows; ++i) t.AddRow(Tuple{C(1), V(i)});
  CDatabase db{t};
  RaQuery q = {RaExpr::Project(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(0),
                                     ColOrConst::Const(1))}),
      {ColOrConst::Const(1)})};
  Instance instance({Relation(1, {{1}})});
  bool got = true;
  for (auto _ : state) {
    auto r = UniqPosExistentialView(q, db, instance);
    got = r.value_or(false);
    benchmark::DoNotOptimize(r);
  }
  state.counters["unique"] = got ? 1 : 0;
  state.SetLabel("Thm 3.2(2): pos. exist. view of e-table, PTIME");
}
BENCHMARK(BM_Thm32_PosExistViewUniq_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

// (3) coNP on c-tables: 3DNF tautology.
void BM_Thm32_CTableUniq_CoNP(benchmark::State& state) {
  auto rng = benchutil::Rng(5 + static_cast<uint32_t>(state.range(0)));
  int vars = static_cast<int>(state.range(0));
  ClausalFormula dnf = RandomClausalFormula(vars, 2 * vars, 3, rng);
  UniquenessInstance inst = TautologyToCTableUniqueness(dnf);
  bool expected = IsDnfTautology(dnf);
  bool got = expected;
  for (auto _ : state) {
    got = UniquenessSearch(inst.view, inst.database, inst.instance);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_dnf_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 3.2(3): c-table, coNP-complete");
}
BENCHMARK(BM_Thm32_CTableUniq_CoNP)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMicrosecond);

// (4) coNP for positive existential with != views of tables:
// non-3-colorability.
void BM_Thm32_ViewUniq_CoNP(benchmark::State& state) {
  auto rng = benchutil::Rng(9 + static_cast<uint32_t>(state.range(0)));
  int nodes = static_cast<int>(state.range(0));
  Graph g = RandomGraph(nodes, 0.5, rng);
  if (g.num_edges() == 0) g.AddEdge(0, 1);
  UniquenessInstance inst = NonColorabilityToViewUniqueness(g);
  bool expected = !IsThreeColorable(g);
  bool got = expected;
  for (auto _ : state) {
    got = UniquenessSearch(inst.view, inst.database, inst.instance);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_coloring_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 3.2(4): pos. exist. with != view, coNP-complete");
}
BENCHMARK(BM_Thm32_ViewUniq_CoNP)
    ->DenseRange(4, 8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 3.2: the uniqueness problem UNIQ",
      "Claim: PTIME for g-tables and for positive existential views of "
      "e-tables; coNP-complete for c-tables (3DNF tautology) and for "
      "positive existential views with != of tables (non-3-colorability).");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
