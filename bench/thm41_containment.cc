// THM 4.1 — containment upper bounds.
//
//   (3) PTIME: g-tables in Codd-tables by freezing + matching.
//   (2) NP:    g-tables in e-tables by freezing + exact membership search.
//   (1) coNP:  views in Codd-tables by the forall-valuation loop with the
//              PTIME matching membership inside.
// The PTIME series scales to thousands of rows; the others show the
// exponential factor entering through exactly one quantifier level.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/containment.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

CTable FreshCodd(int rows, int arity, int base) {
  CTable t(arity);
  for (int i = 0; i < rows; ++i) {
    Tuple tuple;
    for (int j = 0; j < arity; ++j) {
      tuple.push_back(Term::Var(base + arity * i + j));
    }
    t.AddRow(std::move(tuple));
  }
  return t;
}

// (3) PTIME.
void BM_Thm41_GTableInCodd_PTIME(benchmark::State& state) {
  auto rng = benchutil::Rng(21);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 6;
  options.num_variables = rows;
  options.num_global_atoms = rows / 8;
  options.equality_probability = 0.5;
  CTable lhs_t = RandomCTable(options, rng);
  CDatabase lhs{lhs_t};
  CDatabase rhs{FreshCodd(rows, 2, 5'000'000)};
  for (auto _ : state) {
    auto r = ContGTablesInCoddTables(lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 4.1(3): freeze + matching, PTIME");
}
BENCHMARK(BM_Thm41_GTableInCodd_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (2) NP.
void BM_Thm41_GTableInETable_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(23);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions loptions;
  loptions.arity = 2;
  loptions.num_rows = rows;
  loptions.num_constants = 4;
  loptions.num_variables = 1'000'000;
  CTable lhs_t = RandomCTable(loptions, rng);
  CDatabase lhs{lhs_t};
  RandomCTableOptions roptions;
  roptions.arity = 2;
  roptions.num_rows = rows + 2;
  roptions.num_constants = 4;
  roptions.num_variables = 3;
  CTable rhs_t = RandomCTable(roptions, rng);
  CDatabase rhs{rhs_t};
  for (auto _ : state) {
    auto r = ContGTablesInETables(lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 4.1(2): freeze + NP membership");
}
BENCHMARK(BM_Thm41_GTableInETable_NP)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMicrosecond);

// (1) coNP.
void BM_Thm41_ViewInCodd_CoNP(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  // lhs = chain of unique variables; view doubles columns.
  CDatabase lhs{FreshCodd(rows, 1, 0)};
  View q = View::Ra({RaExpr::ProjectCols(RaExpr::Rel(0, 1), {0, 0})});
  CDatabase rhs{FreshCodd(rows, 2, 6'000'000)};
  for (auto _ : state) {
    auto r = ContViewInCoddTables(q, lhs, rhs);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("Thm 4.1(1): forall-loop + matching, coNP");
}
BENCHMARK(BM_Thm41_ViewInCodd_CoNP)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 4.1: containment upper bounds",
      "Claim: CONT is PTIME for g-tables in Codd-tables (freezing), NP for "
      "g-tables in e-tables, coNP for views in Codd-tables. One quantifier "
      "level at a time, the exponential enters.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
