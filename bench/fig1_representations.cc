// FIG1 — the representation hierarchy of Fig. 1.
//
// Rebuilds the paper's five example tables Ta..Te, verifies the instances
// listed in Fig. 1 are members of the corresponding reps, and benchmarks
// possible-world enumeration across the hierarchy (the exponential object
// everything else in the paper avoids touching directly).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/membership.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"

namespace pw {
namespace {

constexpr VarId kX = 0, kY = 1, kZ = 2, kV = 3;

CTable TableTa() {
  CTable t(3);
  t.AddRow(Tuple{C(0), C(1), V(kX)});
  t.AddRow(Tuple{V(kY), V(kZ), C(1)});
  t.AddRow(Tuple{C(2), C(0), V(kV)});
  return t;
}

CTable ETableTb() {
  CTable t(3);
  t.AddRow(Tuple{C(0), C(1), V(kX)});
  t.AddRow(Tuple{V(kX), V(kZ), C(1)});
  t.AddRow(Tuple{C(2), C(0), V(kZ)});
  return t;
}

CTable ITableTc() {
  CTable t = TableTa();
  t.SetGlobal(Conjunction{Neq(V(kX), C(0)), Neq(V(kY), V(kZ))});
  return t;
}

CTable GTableTd() {
  CTable t = ETableTb();
  t.SetGlobal(Conjunction{Neq(V(kX), V(kZ))});
  return t;
}

CTable CTableTe() {
  CTable t(2);
  t.SetGlobal(Conjunction{Neq(V(kX), C(1)), Neq(V(kY), C(2))});
  t.AddRow(Tuple{C(0), C(1)}, Conjunction{Eq(V(kZ), V(kZ))});
  t.AddRow(Tuple{C(0), V(kX)}, Conjunction{Eq(V(kY), C(0))});
  t.AddRow(Tuple{V(kY), V(kX)}, Conjunction{Neq(V(kX), V(kY))});
  return t;
}

CTable ByKind(int kind) {
  switch (kind) {
    case 0:
      return TableTa();
    case 1:
      return ETableTb();
    case 2:
      return ITableTc();
    case 3:
      return GTableTd();
    default:
      return CTableTe();
  }
}

void Verify() {
  using benchutil::Line;
  // The corresponding instances listed under each table in Fig. 1
  // (sigma: x -> 2, y -> 3, z -> 0, v -> 5 from Example 2.1, plus the other
  // listed representatives).
  struct Case {
    const char* name;
    CTable table;
    Instance member;
  };
  Case cases[] = {
      {"Ta (table)", TableTa(),
       Instance({Relation(3, {{0, 1, 2}, {3, 0, 1}, {2, 0, 5}})})},
      {"Tb (e-table)", ETableTb(),
       Instance({Relation(3, {{0, 1, 2}, {2, 0, 1}, {2, 0, 0}})})},
      {"Tc (i-table)", ITableTc(),
       Instance({Relation(3, {{0, 1, 2}, {3, 0, 1}, {2, 0, 5}})})},
      {"Td (g-table)", GTableTd(),
       Instance({Relation(3, {{0, 1, 2}, {2, 0, 1}, {2, 0, 0}})})},
      {"Te (c-table)", CTableTe(), Instance({Relation(2, {{0, 1}, {3, 2}})})},
  };
  for (auto& c : cases) {
    CDatabase db{c.table};
    bool member = Membership(db, c.member);
    Line(std::string("  ") + c.name + ": kind=" + ToString(c.table.Kind()) +
         ", Fig.1 instance is member: " + (member ? "yes" : "NO (BUG)"));
  }
}

void BM_EnumerateWorlds(benchmark::State& state) {
  CTable t = ByKind(static_cast<int>(state.range(0)));
  CDatabase db{t};
  size_t count = 0;
  for (auto _ : state) {
    count = CountDistinctWorlds(db);
    benchmark::DoNotOptimize(count);
  }
  state.counters["worlds"] = static_cast<double>(count);
  state.SetLabel(ToString(t.Kind()));
}
BENCHMARK(BM_EnumerateWorlds)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

void BM_MembershipAcrossHierarchy(benchmark::State& state) {
  CTable t = ByKind(static_cast<int>(state.range(0)));
  CDatabase db{t};
  // Membership of the first enumerated world.
  std::vector<Instance> worlds = EnumerateWorlds(db);
  const Instance& probe = worlds.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Membership(db, probe));
  }
  state.SetLabel(ToString(t.Kind()));
}
BENCHMARK(BM_MembershipAcrossHierarchy)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "FIG1: representations of sets of possible worlds",
      "Claim (Fig. 1 / Example 2.1): Ta..Te classify as table/e-/i-/g-/"
      "c-table and the listed instances are members of their reps.");
  pw::Verify();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
