// ABLATION — design choices inside the exact decision procedures.
//
//   (a) MembershipSearch: dynamic most-constrained-first ordering with
//       forward checking, and the coverage dead-end prune, versus the naive
//       static backtracking. Measured on 3-colorability e-table membership
//       (Theorem 3.1(2)) instances.
//   (b) DATALOG evaluation: semi-naive versus naive fixpoint.
//   (c) Bounded possibility: the Imielinski–Lipski image algorithm
//       (Theorem 5.2(1)) versus raw valuation enumeration.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datalog/eval.h"
#include "decision/membership.h"
#include "decision/possibility.h"
#include "reductions/colorability.h"
#include "tables/world_enum.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

MembershipInstance ColorInstance(int nodes, uint32_t seed) {
  auto rng = benchutil::Rng(seed);
  Graph g = RandomThreeColorableGraph(nodes, 0.5, rng);
  if (g.num_edges() == 0) g.AddEdge(0, 1);
  return ColorabilityToETableMembership(g);
}

void BM_Ablation_Membership(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  int mode = static_cast<int>(state.range(1));
  MembershipInstance inst = ColorInstance(nodes, 7 + nodes);
  MembershipSearchOptions options;
  options.forward_checking = mode >= 1;
  options.coverage_pruning = mode >= 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MembershipSearch(inst.database, inst.instance, options));
  }
  static const char* kLabels[] = {"static order", "+forward checking",
                                  "+coverage prune"};
  state.SetLabel(kLabels[mode]);
}
BENCHMARK(BM_Ablation_Membership)
    ->ArgsProduct({{6, 8, 10}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

void BM_Ablation_DatalogEval(benchmark::State& state) {
  auto rng = benchutil::Rng(19);
  int facts = static_cast<int>(state.range(0));
  bool seminaive = state.range(1) == 1;
  DatalogProgram tc({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(0), V(1)}};
  base.body = {{0, Tuple{V(0), V(1)}}};
  tc.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(0), V(2)}};
  step.body = {{1, Tuple{V(0), V(1)}}, {0, Tuple{V(1), V(2)}}};
  tc.AddRule(step);
  Instance edb({RandomRelation(2, facts, facts / 2 + 2, rng)});
  for (auto _ : state) {
    Instance out = seminaive ? SemiNaiveEval(tc, edb) : NaiveEval(tc, edb);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(seminaive ? "semi-naive" : "naive");
}
BENCHMARK(BM_Ablation_DatalogEval)
    ->ArgsProduct({{32, 128, 512}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_Ablation_BoundedPossibility(benchmark::State& state) {
  auto rng = benchutil::Rng(23);
  int rows = static_cast<int>(state.range(0));
  bool use_image = state.range(1) == 1;
  RandomCTableOptions options;
  options.arity = 2;
  options.num_rows = rows;
  options.num_constants = 4;
  options.num_variables = rows / 3 + 1;
  options.num_local_atoms = 1;
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  RaQuery id = {RaExpr::Rel(0, 2)};
  std::vector<LocatedFact> pattern = {{0, {0, 1}}, {0, {2, 3}}};
  for (auto _ : state) {
    if (use_image) {
      benchmark::DoNotOptimize(PossBoundedPosExistential(id, db, pattern));
    } else {
      benchmark::DoNotOptimize(
          PossibilitySearch(View::Identity(), db, pattern));
    }
  }
  state.SetLabel(use_image ? "IL image (Thm 5.2(1))" : "world enumeration");
}
BENCHMARK(BM_Ablation_BoundedPossibility)
    ->ArgsProduct({{4, 8, 12}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "ABLATION: algorithmic design choices",
      "Forward checking + coverage pruning vs naive backtracking in the "
      "membership search; semi-naive vs naive DATALOG; the IL-image bounded "
      "possibility algorithm vs raw world enumeration.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
