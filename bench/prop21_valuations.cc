// PROP 2.1 — the valuation-space restriction.
//
// The proofs of Proposition 2.1 rest on one observation: only valuations
// with values in Delta union Delta' matter, and only up to bijective
// renaming of Delta'. This bench quantifies the saving: the number of
// restricted-growth representatives versus the naive (|Delta| + n)^n
// valuation count, and the wall-clock cost of full world enumeration as
// the variable count grows — the exponential object every PTIME algorithm
// in the paper is designed to avoid.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"

namespace pw {
namespace {

CTable FreeTable(int vars) {
  CTable t(1);
  for (int i = 0; i < vars; ++i) t.AddRow(Tuple{V(i)});
  t.AddRow(Tuple{C(1)});
  t.AddRow(Tuple{C(2)});
  return t;
}

void BM_Prop21_RepresentativeEnumeration(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  CDatabase db{FreeTable(vars)};
  uint64_t representatives = 0;
  for (auto _ : state) {
    representatives = 0;
    ForEachSatisfyingValuation(db, {}, [&representatives](const Valuation&) {
      ++representatives;
      return true;
    });
    benchmark::DoNotOptimize(representatives);
  }
  // Naive count: every variable takes any of |Delta| + |X| values.
  double naive = std::pow(2.0 + vars, vars);
  state.counters["representatives"] = static_cast<double>(representatives);
  state.counters["naive_valuations"] = naive;
  state.counters["saving_factor"] =
      naive / static_cast<double>(representatives);
  state.SetLabel("restricted growth vs naive Delta-union-Delta' count");
}
BENCHMARK(BM_Prop21_RepresentativeEnumeration)
    ->DenseRange(1, 7)
    ->Unit(benchmark::kMicrosecond);

void BM_Prop21_DistinctWorlds(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  CDatabase db{FreeTable(vars)};
  size_t worlds = 0;
  for (auto _ : state) {
    worlds = CountDistinctWorlds(db);
    benchmark::DoNotOptimize(worlds);
  }
  state.counters["worlds"] = static_cast<double>(worlds);
  state.SetLabel("distinct worlds up to renaming");
}
BENCHMARK(BM_Prop21_DistinctWorlds)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "PROP 2.1: valuations over Delta union Delta', up to renaming",
      "Claim: all five upper bounds follow from restricting attention to "
      "polynomially-checkable valuations over Delta union Delta', "
      "enumerated up to bijections of Delta'. Counters show the "
      "representative count vs the naive count, and the remaining "
      "exponential growth in the variable count.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
