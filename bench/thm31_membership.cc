// THM 3.1 — the membership problem.
//
//   (1) PTIME on Codd-tables via bipartite matching: polynomial scaling up
//       to thousands of rows.
//   (2,3) NP-complete on e-tables / i-tables: the 3-colorability reduction;
//       exact search scales exponentially on hard (non-colorable) inputs.
//   (4) NP-complete for a fixed positive existential view of tables.
// Every reduction cell cross-checks against the brute-force coloring solver
// and reports agreement as a counter.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "decision/membership.h"
#include "reductions/colorability.h"
#include "solvers/graph_color.h"
#include "workload/random_gen.h"

namespace pw {
namespace {

// (1) PTIME: random Codd-table and a random world of it.
void BM_Thm31_CoddMembership_PTIME(benchmark::State& state) {
  auto rng = benchutil::Rng(7);
  int rows = static_cast<int>(state.range(0));
  RandomCTableOptions options;
  options.arity = 3;
  options.num_rows = rows;
  options.num_constants = 8;
  options.num_variables = 10'000'000;
  CTable t = RandomCTable(options, rng);
  CDatabase db{t};
  // A member: instantiate every variable randomly.
  std::unordered_map<VarId, Term> sub;
  std::uniform_int_distribution<int> c(0, 7);
  for (VarId v : t.Variables()) sub.emplace(v, Term::Const(c(rng)));
  CTable ground = t.Substitute(sub);
  Relation world(3);
  for (const CRow& row : ground.rows()) world.Insert(ToFact(row.tuple));
  Instance member({world});
  for (auto _ : state) {
    auto r = MembershipCoddTables(db, member);
    benchmark::DoNotOptimize(r);
  }
  state.counters["is_member"] = 1;
  state.SetLabel("Thm 3.1(1): matching, PTIME");
}
BENCHMARK(BM_Thm31_CoddMembership_PTIME)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

// (2) NP on e-tables: 3-colorability reduction, planted-colorable ("yes")
// and random ("mixed") graphs.
void BM_Thm31_ETableMembership_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(11 + static_cast<uint32_t>(state.range(0)));
  int nodes = static_cast<int>(state.range(0));
  Graph g = RandomGraph(nodes, 0.5, rng);
  MembershipInstance inst = ColorabilityToETableMembership(g);
  bool expected = IsThreeColorable(g);
  bool got = expected;
  for (auto _ : state) {
    got = MembershipSearch(inst.database, inst.instance);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_coloring_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 3.1(2): e-table, NP-complete");
}
BENCHMARK(BM_Thm31_ETableMembership_NP)
    ->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMicrosecond);

// (3) NP on i-tables: same reduction family.
void BM_Thm31_ITableMembership_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(13 + static_cast<uint32_t>(state.range(0)));
  int nodes = static_cast<int>(state.range(0));
  Graph g = RandomGraph(nodes, 0.5, rng);
  MembershipInstance inst = ColorabilityToITableMembership(g);
  bool expected = IsThreeColorable(g);
  bool got = expected;
  for (auto _ : state) {
    got = MembershipSearch(inst.database, inst.instance);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_coloring_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 3.1(3): i-table, NP-complete");
}
BENCHMARK(BM_Thm31_ITableMembership_NP)
    ->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMicrosecond);

// (4) NP for a fixed positive existential view of tables. Colorable
// instances only (refutation explodes; that is the lower bound's point).
void BM_Thm31_ViewMembership_NP(benchmark::State& state) {
  auto rng = benchutil::Rng(17 + static_cast<uint32_t>(state.range(0)));
  int nodes = static_cast<int>(state.range(0));
  Graph g = RandomThreeColorableGraph(nodes, 0.6, rng);
  if (g.num_edges() == 0) g.AddEdge(0, 1);
  MembershipInstance inst = ColorabilityToViewMembership(g);
  bool expected = IsThreeColorable(g);
  bool got = expected;
  for (auto _ : state) {
    got = MembershipInView(inst.view, inst.database, inst.instance);
    benchmark::DoNotOptimize(got);
  }
  state.counters["agrees_with_coloring_solver"] = (got == expected) ? 1 : 0;
  state.SetLabel("Thm 3.1(4): pos. existential view, NP-complete");
}
BENCHMARK(BM_Thm31_ViewMembership_NP)
    ->DenseRange(3, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pw

int main(int argc, char** argv) {
  pw::benchutil::Header(
      "THM 3.1: the membership problem MEMB",
      "Claim: PTIME for Codd-tables (bipartite matching); NP-complete for "
      "e-tables, i-tables, and positive existential views of tables "
      "(3-colorability). PTIME series scales polynomially to 4096 rows; the "
      "NP series' exact search grows exponentially in the graph size.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
