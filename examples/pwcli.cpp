// pwcli: a tiny command-line front end over the library, using the text
// format of tables/text_format.h.
//
// Usage:
//   pwcli <file> worlds
//   pwcli <file> poss <rel-index> <value>...
//   pwcli <file> cert <rel-index> <value>...
//   pwcli <file> minimize
//   pwcli <file> answers
//
// Values are numeric constants or identifiers (interned). With no
// arguments, runs a self-demo on a built-in database.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "decision/answer_sets.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "tables/ctable.h"
#include "tables/text_format.h"
#include "tables/world_enum.h"

using namespace pw;

namespace {

constexpr char kDemo[] =
    "# demo: one known fact, one null with an exclusion\n"
    "table arity 2\n"
    "global ?x != red\n"
    "row door red\n"
    "row window ?x\n";

int Fail(const std::string& message) {
  std::fprintf(stderr, "pwcli: %s\n", message.c_str());
  return 1;
}

ConstId ParseValue(const std::string& token, SymbolTable& sym) {
  if (!token.empty() &&
      (std::isdigit(static_cast<unsigned char>(token[0])) ||
       token[0] == '-')) {
    return static_cast<ConstId>(std::stol(token));
  }
  return sym.Intern(token);
}

void PrintWorlds(const CDatabase& db, const SymbolTable& sym) {
  auto worlds = EnumerateWorlds(db);
  std::printf("%zu distinct worlds (up to renaming of fresh constants):\n",
              worlds.size());
  for (size_t i = 0; i < worlds.size(); ++i) {
    std::printf("-- world %zu --\n%s", i + 1,
                worlds[i].ToString(&sym).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  SymbolTable sym;
  std::string text;
  std::vector<std::string> args;
  if (argc < 2) {
    std::printf("(no input; running the built-in demo)\n\n%s\n", kDemo);
    text = kDemo;
    args = {"worlds"};
  } else {
    std::ifstream in(argv[1]);
    if (!in) return Fail(std::string("cannot open ") + argv[1]);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
    if (args.empty()) args = {"worlds"};
  }

  auto parsed = ParseCDatabase(text, &sym);
  if (!parsed.ok()) return Fail("parse error: " + parsed.error);
  CDatabase db = *parsed.database;
  std::printf("parsed %zu table(s); database kind: %s\n\n", db.num_tables(),
              ToString(db.Kind()).c_str());

  const std::string& command = args[0];
  if (command == "worlds") {
    PrintWorlds(db, sym);
    return 0;
  }
  if (command == "minimize") {
    for (size_t i = 0; i < db.num_tables(); ++i) {
      std::printf("%s",
                  FormatCTable(db.table(i).Minimized(), &sym).c_str());
    }
    return 0;
  }
  if (command == "answers") {
    Instance possible = PossibleAnswers(View::Identity(), db);
    Instance certain = CertainAnswers(View::Identity(), db);
    std::printf("possible (ground, over the input domain):\n%s",
                possible.ToString(&sym).c_str());
    std::printf("certain:\n%s", certain.ToString(&sym).c_str());
    return 0;
  }
  if (command == "poss" || command == "cert") {
    if (args.size() < 3) return Fail("usage: " + command + " <rel> <v>...");
    size_t rel = std::stoul(args[1]);
    Fact fact;
    for (size_t i = 2; i < args.size(); ++i) {
      fact.push_back(ParseValue(args[i], sym));
    }
    std::vector<LocatedFact> pattern = {{rel, fact}};
    bool answer = command == "poss"
                      ? Possibility(View::Identity(), db, pattern)
                      : Certainty(View::Identity(), db, pattern);
    std::printf("%s %s in R%zu: %s\n", command.c_str(),
                ToString(fact, &sym).c_str(), rel, answer ? "yes" : "no");
    return 0;
  }
  return Fail("unknown command '" + command + "'");
}
