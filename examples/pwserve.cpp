// pwserve: a miniature concurrent query service over the library.
//
// One writer thread keeps mutating an edge c-table (insert / delete through
// the in-place update APIs, published as versioned snapshots), while N
// reader threads issue a mixed query load against whatever version they
// snapshot: possibility and certainty of fact patterns (the decision
// procedures, resolving conditions through the process-shared interner) and
// full conditioned transitive-closure fixpoints (each reader drives its own
// single-owner ConditionedFixpoint over the shared interner).
//
// This is the demo wired through every piece of the threading model
// (README "Threading model"): VersionedCDatabase snapshots, the shared
// ConditionInterner installed process-wide, frozen tables with warmed
// condition caches, and COW table storage under the writer.
//
// Usage:
//   pwserve [num_readers] [duration_seconds] [chain_length]
//
// Defaults: 4 readers, 2 seconds, chain of 48 edges (every 6th through a
// shared null, so conditions actually flow through the queries). Prints
// per-reader and aggregate queries/sec plus the number of versions
// published.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "condition/interner.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "ilalgebra/datalog_ctable.h"
#include "tables/ctable.h"
#include "tables/snapshot.h"
#include "tables/updates.h"

using namespace pw;

namespace {

DatalogProgram TransitiveClosure() {
  DatalogProgram p({2, 2}, 1);
  DatalogRule base;
  base.head = {1, Tuple{V(100), V(101)}};
  base.body = {{0, Tuple{V(100), V(101)}}};
  p.AddRule(base);
  DatalogRule step;
  step.head = {1, Tuple{V(100), V(102)}};
  step.body = {{1, Tuple{V(100), V(101)}}, {0, Tuple{V(101), V(102)}}};
  p.AddRule(step);
  return p;
}

/// Edge chain 0 -> 1 -> ... -> n; every `gap`-th edge routes through a
/// shared null so the decision procedures and the fixpoint carry real
/// conditions, not just ground facts.
CDatabase EdgeChain(int n, int gap) {
  CTable t(2);
  for (int i = 0; i < n; ++i) {
    if (gap > 0 && i % gap == gap - 1) {
      t.AddRow(Tuple{C(i), V(0)});
      t.AddRow(Tuple{V(0), C(i + 1)});
    } else {
      t.AddRow(Tuple{C(i), C(i + 1)});
    }
  }
  return CDatabase{t};
}

struct ReaderTally {
  size_t queries = 0;
  size_t possibility = 0;
  size_t certainty = 0;
  size_t datalog = 0;
  size_t yes = 0;  // positive possibility/certainty answers (sanity signal)
};

}  // namespace

int main(int argc, char** argv) {
  const int num_readers = argc > 1 ? std::atoi(argv[1]) : 4;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  const int chain = argc > 3 ? std::atoi(argv[3]) : 48;
  if (num_readers < 1 || seconds <= 0 || chain < 2) {
    std::fprintf(stderr,
                 "usage: pwserve [num_readers>=1] [seconds>0] [chain>=2]\n");
    return 1;
  }

  ConditionInterner interner;
  VersionedCDatabase versioned(EdgeChain(chain, /*gap=*/6), interner);
  // The decision procedures resolve conditions through Global(); route it
  // to the shared interner so every reader hits the warmed caches.
  ConditionInterner::SetProcessShared(&interner);

  DatalogProgram tc = TransitiveClosure();
  std::atomic<bool> stop{false};
  std::atomic<size_t> versions_published{0};

  std::thread writer([&] {
    std::mt19937 rng(1);
    std::uniform_int_distribution<int> node(0, chain - 1);
    while (!stop.load(std::memory_order_acquire)) {
      int u = node(rng);
      versioned.Mutate([&](CDatabase& db) {
        CTable& edges = db.mutable_table(0);
        if (u % 4 == 3) {
          DeleteFactInPlace(edges, Fact{u, u + 1});
        } else {
          InsertFactInPlace(edges, Fact{u, u + 1});
        }
      });
      versions_published.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<ReaderTally> tallies(num_readers);
  std::vector<std::thread> readers;
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(100 + r);
      std::uniform_int_distribution<int> node(0, chain);
      std::uniform_int_distribution<int> kind(0, 9);
      DatalogCTableOptions options;
      options.interner = &interner;
      ReaderTally& tally = tallies[r];
      while (!stop.load(std::memory_order_acquire)) {
        VersionedCDatabase::Snapshot snap = versioned.Read();
        int k = kind(rng);
        if (k < 4) {
          std::vector<LocatedFact> pattern = {
              {0, Fact{node(rng), node(rng)}}};
          tally.yes += Possibility(View::Identity(), snap.db, pattern);
          ++tally.possibility;
        } else if (k < 8) {
          std::vector<LocatedFact> pattern = {
              {0, Fact{node(rng), node(rng)}}};
          tally.yes += Certainty(View::Identity(), snap.db, pattern);
          ++tally.certainty;
        } else {
          CDatabase out = DatalogOnCTables(tc, snap.db, nullptr, options);
          tally.yes += out.table(1).num_rows() > 0;
          ++tally.datalog;
        }
        ++tally.queries;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  writer.join();
  ConditionInterner::SetProcessShared(nullptr);

  size_t total = 0;
  for (int r = 0; r < num_readers; ++r) {
    const ReaderTally& tally = tallies[r];
    std::printf(
        "reader %d: %zu queries (%zu poss, %zu cert, %zu datalog; "
        "%zu positive) -> %.0f q/s\n",
        r, tally.queries, tally.possibility, tally.certainty, tally.datalog,
        tally.yes, static_cast<double>(tally.queries) / seconds);
    total += tally.queries;
  }
  std::printf(
      "total: %zu queries over %.1fs with %d readers -> %.0f q/s; "
      "%zu versions published; %zu conditions interned\n",
      total, seconds, num_readers,
      static_cast<double>(total) / seconds,
      versions_published.load(), interner.num_conjunctions());
  return 0;
}
