// Data integration with conflicting sources: two feeds disagree about a
// sensor's reading. The merged database is a c-table whose local conditions
// encode which source is trusted — exactly the "views of sets of possible
// worlds" mechanism of the paper. We then compare integrated views with the
// containment procedures of Section 4.

#include <cstdio>

#include "core/symbol_table.h"
#include "decision/certainty.h"
#include "decision/containment.h"
#include "decision/possibility.h"
#include "decision/uniqueness.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"

using namespace pw;

int main() {
  std::printf("Data integration with conflicting sources (c-tables)\n");
  std::printf("=====================================================\n\n");

  SymbolTable sym;
  ConstId s1 = sym.Intern("sensor1");
  ConstId s2 = sym.Intern("sensor2");
  ConstId lo = sym.Intern("low");
  ConstId hi = sym.Intern("high");
  ConstId feed_a = sym.Intern("feedA");
  ConstId feed_b = sym.Intern("feedB");

  // Variable t = "which feed is trusted". reading(sensor, level):
  //   feed A says sensor1 is low; feed B says sensor1 is high;
  //   both agree sensor2 is high.
  const VarId t = 0;
  CTable reading(2);
  reading.AddRow(Tuple{C(s1), C(lo)}, Conjunction{Eq(V(t), C(feed_a))});
  reading.AddRow(Tuple{C(s1), C(hi)}, Conjunction{Eq(V(t), C(feed_b))});
  reading.AddRow(Tuple{C(s2), C(hi)});
  // The trusted feed is one of the two.
  // (Encoded positively: a second table trusted(t) with two possible rows.)
  CTable trusted(1);
  trusted.AddRow(Tuple{V(t)}, Conjunction{Eq(V(t), C(feed_a))});
  trusted.AddRow(Tuple{V(t)}, Conjunction{Eq(V(t), C(feed_b))});

  CDatabase db;
  db.AddTable(reading);
  db.AddTable(trusted);
  std::printf("reading (c-table):\n%s\n", reading.ToString(&sym).c_str());

  // --- What is possible, what is certain -----------------------------------
  auto poss = [&](Fact f) {
    return Possibility(View::Identity(), db, {{0, f}});
  };
  auto cert = [&](Fact f) {
    return Certainty(View::Identity(), db, {{0, f}});
  };
  std::printf("reading(sensor1, low)   possible: %s  certain: %s\n",
              poss({s1, lo}) ? "yes" : "no", cert({s1, lo}) ? "yes" : "no");
  std::printf("reading(sensor1, high)  possible: %s  certain: %s\n",
              poss({s1, hi}) ? "yes" : "no", cert({s1, hi}) ? "yes" : "no");
  std::printf("reading(sensor2, high)  possible: %s  certain: %s\n",
              poss({s2, hi}) ? "yes" : "no", cert({s2, hi}) ? "yes" : "no");
  std::printf("both sensor1 readings jointly possible: %s "
              "(the conditions exclude each other)\n\n",
              Possibility(View::Identity(), db,
                          {{0, {s1, lo}}, {0, {s1, hi}}})
                  ? "yes"
                  : "no");

  // --- Containment between integrated views --------------------------------
  // The "sensor levels" view projects away nothing; compare the integration
  // against a coarse summary database that allows any reading per sensor.
  CTable coarse(2);
  coarse.AddRow(Tuple{C(s1), V(10)});
  coarse.AddRow(Tuple{C(s2), V(11)});
  CTable any_flag(1);
  any_flag.AddRow(Tuple{V(12)});
  CDatabase summary;
  summary.AddTable(coarse);
  summary.AddTable(any_flag);
  std::printf("Is the integrated database contained in the coarse summary\n"
              "(every integrated world a summary world)?  %s\n",
              Containment(View::Identity(), db, View::Identity(), summary)
                  ? "yes"
                  : "no");
  std::printf("And conversely?  %s (the summary also allows worlds the\n"
              "integration rules out)\n\n",
              Containment(View::Identity(), summary, View::Identity(), db)
                  ? "yes"
                  : "no");

  // --- Query view over the integration ------------------------------------
  // alarms = sensors reading high: q = pi_0(sigma_{level = high}(reading)).
  View alarms = View::Ra({RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(1),
                                     ColOrConst::Const(hi))}),
      {0})});
  std::printf("Under the alarm view q = pi_0(sigma_{level=high}):\n");
  std::printf("  sensor2 alarmed: certain %s\n",
              Certainty(alarms, db, {{0, {s2}}}) ? "yes" : "no");
  std::printf("  sensor1 alarmed: possible %s, certain %s\n",
              Possibility(alarms, db, {{0, {s1}}}) ? "yes" : "no",
              Certainty(alarms, db, {{0, {s1}}}) ? "yes" : "no");
  std::printf("  is {sensor2} the unique alarm set? %s (sensor1 may or may\n"
              "  not alarm depending on the trusted feed)\n",
              Uniqueness(alarms, db,
                         Instance({Relation(1, {{s2}})}))
                  ? "yes"
                  : "no");
  return 0;
}
