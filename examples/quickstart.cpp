// Quickstart: building conditioned tables, enumerating possible worlds, and
// asking the five questions of the paper (membership, uniqueness,
// containment, possibility, certainty).
//
// Models the paper's own Fig. 1 c-table Te and walks through the API.

#include <cstdio>

#include "decision/certainty.h"
#include "decision/containment.h"
#include "decision/membership.h"
#include "decision/possibility.h"
#include "decision/uniqueness.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"

using namespace pw;

int main() {
  std::printf("pworlds quickstart: sets of possible worlds as c-tables\n");
  std::printf("=======================================================\n\n");

  // --- 1. Build the Fig. 1 c-table Te -------------------------------------
  // Variables x, y, z; global condition x != 1, y != 2; rows:
  //   (0, 1) :: true       (0, x) :: y = 0      (y, x) :: x != y
  const VarId x = 0, y = 1, z = 2;
  CTable te(2);
  te.SetGlobal(Conjunction{Neq(V(x), C(1)), Neq(V(y), C(2))});
  te.AddRow(Tuple{C(0), C(1)}, Conjunction{Eq(V(z), V(z))});
  te.AddRow(Tuple{C(0), V(x)}, Conjunction{Eq(V(y), C(0))});
  te.AddRow(Tuple{V(y), V(x)}, Conjunction{Neq(V(x), V(y))});
  CDatabase db{te};

  std::printf("The c-table Te of Fig. 1 (kind: %s):\n%s\n",
              ToString(te.Kind()).c_str(), te.ToString().c_str());

  // --- 2. Enumerate its possible worlds ------------------------------------
  auto worlds = EnumerateWorlds(db);
  std::printf("rep(Te) has %zu distinct worlds up to renaming of fresh\n"
              "constants; the first few:\n",
              worlds.size());
  for (size_t i = 0; i < worlds.size() && i < 3; ++i) {
    std::printf("%s", worlds[i].ToString().c_str());
  }

  // --- 3. Membership (Theorem 3.1) -----------------------------------------
  Instance candidate({Relation(2, {{0, 1}, {3, 2}})});
  std::printf("\nMEMB: is {(0,1), (3,2)} a possible world?  %s\n",
              Membership(db, candidate) ? "yes" : "no");

  // --- 4. Uniqueness (Theorem 3.2) -----------------------------------------
  std::printf("UNIQ: is rep(Te) the singleton {(0,1)}?    %s\n",
              Uniqueness(View::Identity(), db,
                         Instance({Relation(2, {{0, 1}})}))
                  ? "yes"
                  : "no");

  // --- 5. Containment (Theorem 4.1) ----------------------------------------
  // A Codd table generalizing everything of arity 2 with <= 3 rows.
  CTable anything(2);
  for (VarId v = 100; v < 106; ++v) {
    if (v % 2 == 0) anything.AddRow(Tuple{V(v), V(v + 1)});
  }
  std::printf("CONT: rep(Te) contained in rep({3 free rows})? %s\n",
              Containment(View::Identity(), db, View::Identity(),
                          CDatabase{anything})
                  ? "yes"
                  : "no");

  // --- 6. Possibility and certainty (Theorems 5.1-5.3) ---------------------
  std::printf("POSS: is the fact (0,1) possible?  %s\n",
              Possibility(View::Identity(), db, {{0, {0, 1}}}) ? "yes" : "no");
  std::printf("CERT: is the fact (0,1) certain?   %s\n",
              Certainty(View::Identity(), db, {{0, {0, 1}}}) ? "yes" : "no");
  std::printf("POSS: is the fact (5,5) possible?  %s\n",
              Possibility(View::Identity(), db, {{0, {5, 5}}}) ? "yes" : "no");

  // --- 7. A query view ------------------------------------------------------
  // q = pi_0(sigma_{col1 = 1}(Te)): sources whose second column is 1.
  View q = View::Ra({RaExpr::ProjectCols(
      RaExpr::Select(RaExpr::Rel(0, 2),
                     {SelectAtom::Eq(ColOrConst::Col(1),
                                     ColOrConst::Const(1))}),
      {0})});
  std::printf("\nUnder the view q = pi_0(sigma_{#1=1}(R)):\n");
  std::printf("POSS: is (0) a possible answer? %s\n",
              Possibility(q, db, {{0, {0}}}) ? "yes" : "no");
  std::printf("CERT: is (0) a certain answer?  %s\n",
              Certainty(q, db, {{0, {0}}}) ? "yes" : "no");
  return 0;
}
