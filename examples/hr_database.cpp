// Incomplete HR database: the classic null-value scenario that motivates the
// paper. Employees with unknown departments and managers are modeled as a
// g-table; queries are answered with certain/possible semantics, and the
// recursive "reports-to" chain is a DATALOG query whose certain answers are
// computed in PTIME (Theorem 5.3(1)).

#include <cstdio>

#include "core/symbol_table.h"
#include "datalog/certain.h"
#include "decision/certainty.h"
#include "decision/possibility.h"
#include "tables/ctable.h"
#include "tables/world_enum.h"

using namespace pw;

int main() {
  std::printf("Incomplete HR database (g-tables + certain answers)\n");
  std::printf("====================================================\n\n");

  SymbolTable sym;
  ConstId alice = sym.Intern("alice");
  ConstId bob = sym.Intern("bob");
  ConstId carol = sym.Intern("carol");
  ConstId dave = sym.Intern("dave");
  ConstId sales = sym.Intern("sales");
  ConstId eng = sym.Intern("eng");

  // works_in(person, dept): bob's department is unknown (null x0), but it is
  // known NOT to be sales; dave's department equals bob's (same null).
  const VarId x0 = 0;
  CTable works_in(2);
  works_in.AddRow(Tuple{C(alice), C(eng)});
  works_in.AddRow(Tuple{C(bob), V(x0)});
  works_in.AddRow(Tuple{C(carol), C(sales)});
  works_in.AddRow(Tuple{C(dave), V(x0)});
  works_in.SetGlobal(Conjunction{Neq(V(x0), C(sales))});

  // manages(manager, report): carol's manager is unknown.
  const VarId x1 = 1;
  CTable manages(2);
  manages.AddRow(Tuple{C(alice), C(bob)});
  manages.AddRow(Tuple{C(bob), C(dave)});
  manages.AddRow(Tuple{V(x1), C(carol)});

  CDatabase db;
  db.AddTable(works_in);
  db.AddTable(manages);
  std::printf("works_in (g-table, dept of bob = dept of dave != sales):\n%s\n",
              works_in.ToString(&sym).c_str());
  std::printf("manages:\n%s\n", manages.ToString(&sym).c_str());

  // --- Possible/certain point queries --------------------------------------
  auto poss = [&](size_t rel, Fact f) {
    return Possibility(View::Identity(), db, {{rel, f}});
  };
  auto cert = [&](size_t rel, Fact f) {
    return Certainty(View::Identity(), db, {{rel, f}});
  };
  std::printf("works_in(bob, eng)    possible: %s   certain: %s\n",
              poss(0, {bob, eng}) ? "yes" : "no",
              cert(0, {bob, eng}) ? "yes" : "no");
  std::printf("works_in(bob, sales)  possible: %s   (global forbids it)\n",
              poss(0, {bob, sales}) ? "yes" : "no");
  std::printf("works_in(dave, eng)   certain given bob in eng? joint "
              "possibility of both: %s\n",
              Possibility(View::Identity(), db,
                          {{0, {bob, eng}}, {0, {dave, eng}}})
                  ? "yes"
                  : "no");
  std::printf("...but bob in eng AND dave in some other dept jointly "
              "possible: %s (same null!)\n",
              Possibility(View::Identity(), db,
                          {{0, {bob, eng}}, {0, {dave, sales}}})
                  ? "yes"
                  : "no");

  // --- Recursive certain answers (Theorem 5.3(1)) --------------------------
  // reports_to = transitive closure of manages (pred 2 = EDB manages here).
  DatalogProgram chain({2, 2, 2}, /*num_edb=*/2);
  DatalogRule base;
  base.head = {2, Tuple{V(0), V(1)}};
  base.body = {{1, Tuple{V(0), V(1)}}};
  chain.AddRule(base);
  DatalogRule step;
  step.head = {2, Tuple{V(0), V(2)}};
  step.body = {{2, Tuple{V(0), V(1)}}, {1, Tuple{V(1), V(2)}}};
  chain.AddRule(step);

  auto certain = DatalogCertainAnswers(chain, db);
  std::printf("\nCertain reports_to facts (PTIME, matrix evaluated as if "
              "complete):\n%s",
              certain->relation(2).ToString(&sym).c_str());
  std::printf("\nNote alice->dave is certain (through bob) while ?->carol "
              "is not: the\nunknown manager blocks certainty but not "
              "possibility:\n");
  View tc_view = View::Datalog(chain, {2});
  std::printf("reports_to(alice, carol) possible: %s, certain: %s\n",
              Possibility(tc_view, db, {{0, {alice, carol}}}) ? "yes" : "no",
              Certainty(tc_view, db, {{0, {alice, carol}}}) ? "yes" : "no");
  return 0;
}
