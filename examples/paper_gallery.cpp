// Gallery: regenerates the paper's worked examples (Figs. 3-12) from the
// reduction generators and prints each construction next to the answer of
// the corresponding decision procedure and brute-force solver.

#include <cstdio>

#include "decision/certainty.h"
#include "decision/containment.h"
#include "decision/membership.h"
#include "decision/possibility.h"
#include "decision/uniqueness.h"
#include "reductions/colorability.h"
#include "reductions/datalog_gadget.h"
#include "reductions/forall_exists.h"
#include "reductions/satisfiability.h"
#include "reductions/tautology.h"
#include "solvers/dnf_tautology.h"
#include "solvers/graph_color.h"
#include "solvers/qbf.h"
#include "solvers/sat.h"

using namespace pw;

namespace {

void Section(const char* title) { std::printf("\n--- %s ---\n", title); }

}  // namespace

int main() {
  std::printf("Gallery: the paper's worked examples, regenerated\n");
  std::printf("=================================================\n");

  Graph g = Graph::PaperFig4a();
  std::printf("\nThe running graph (Fig. 4(a)): %s\n", g.ToString().c_str());
  std::printf("3-colorable: %s\n", IsThreeColorable(g) ? "yes" : "no");

  Section("Fig. 4(c) / Thm 3.1(2): e-table membership");
  MembershipInstance e = ColorabilityToETableMembership(g);
  std::printf("e-table T (%zu rows):\n%s", e.database.table(0).num_rows(),
              e.database.table(0).ToString().c_str());
  std::printf("MEMB answer: %s (expects yes: graph is 3-colorable)\n",
              Membership(e.database, e.instance) ? "yes" : "no");

  Section("Fig. 4(b) / Thm 3.1(3): i-table membership");
  MembershipInstance i = ColorabilityToITableMembership(g);
  std::printf("i-table (T, phi):\n%s",
              i.database.table(0).ToString().c_str());
  std::printf("MEMB answer: %s\n",
              Membership(i.database, i.instance) ? "yes" : "no");

  Section("Fig. 4(d) / Thm 3.1(4): view membership");
  MembershipInstance v = ColorabilityToViewMembership(g);
  std::printf("T(R):\n%sT(S):\n%s",
              v.database.table(0).ToString().c_str(),
              v.database.table(1).ToString().c_str());
  std::printf("q = %s\n", v.view.ToString().c_str());
  std::printf("MEMB answer: %s\n",
              MembershipInView(v.view, v.database, v.instance) ? "yes" : "no");

  Section("Fig. 5: the running 3CNF / 3DNF formula");
  ClausalFormula f = PaperFig5Cnf();
  std::printf("as 3CNF: %s\n  satisfiable: %s\n", f.ToString(true).c_str(),
              IsSatisfiable(f) ? "yes" : "no");
  std::printf("as 3DNF: %s\n  tautology: %s\n", f.ToString(false).c_str(),
              IsDnfTautology(f) ? "yes" : "no");

  Section("Thm 3.2(3): 3DNF tautology -> c-table uniqueness");
  UniquenessInstance u = TautologyToCTableUniqueness(f);
  std::printf("c-table T0:\n%s", u.database.table(0).ToString().c_str());
  std::printf("UNIQ({(1)}) answer: %s (expects %s: formula is %sa "
              "tautology)\n",
              Uniqueness(u.view, u.database, u.instance) ? "yes" : "no",
              IsDnfTautology(f) ? "yes" : "no",
              IsDnfTautology(f) ? "" : "not ");

  Section("Fig. 6 / Thm 3.2(4): non-3-colorability -> view uniqueness");
  UniquenessInstance nu = NonColorabilityToViewUniqueness(g);
  std::printf("T0:\n%s", nu.database.table(0).ToString().c_str());
  std::printf("UNIQ answer: %s (graph is 3-colorable, so not unique)\n",
              Uniqueness(nu.view, nu.database, nu.instance) ? "yes" : "no");

  Section("Fig. 7 / Thm 4.2(1): forall-exists 3CNF -> table in i-table");
  ForallExistsCnf qbf = PaperFig5ForallExists();
  std::printf("QBF: forall x1,x2 exists x3,x4,x5 (Fig. 5 CNF): %s\n",
              SolveForallExists(qbf) ? "true" : "false");
  ContainmentInstance ci = ForallExistsToTableInITable(qbf);
  std::printf("lhs T0: %zu rows; rhs (T, phi): %zu rows, %zu inequalities\n",
              ci.lhs.table(0).num_rows(), ci.rhs.table(0).num_rows(),
              ci.rhs.table(0).global().size());
  std::printf("CONT answer: %s\n",
              Containment(ci.lhs_view, ci.lhs, ci.rhs_view, ci.rhs)
                  ? "yes"
                  : "no");

  Section("Fig. 11 / Thm 5.1(2,3): 3CNF -> possibility");
  UnboundedPossibilityInstance pe = SatToETablePossibility(f);
  std::printf("e-table: %zu rows, pattern: %zu facts\n",
              pe.database.table(0).num_rows(), pe.pattern.TotalFacts());
  std::printf("POSS answer (e-table): %s\n",
              PossibilityUnbounded(View::Identity(), pe.database, pe.pattern)
                  ? "yes"
                  : "no");
  UnboundedPossibilityInstance pi = SatToITablePossibility(f);
  std::printf("POSS answer (i-table): %s\n",
              PossibilityUnbounded(View::Identity(), pi.database, pi.pattern)
                  ? "yes"
                  : "no");

  Section("Fig. 12 / Thm 5.2(3): 3CNF -> DATALOG possibility gadget");
  DatalogPossibilityInstance dp = SatToDatalogPossibility(f);
  std::printf("gadget: R1 has %zu edges, R2 has %zu edges; program:\n%s",
              dp.database.table(1).num_rows(),
              dp.database.table(2).num_rows(),
              dp.view.datalog().ToString().c_str());
  std::printf("POSS(1) answer: %s (formula is satisfiable)\n",
              Possibility(dp.view, dp.database, dp.pattern) ? "yes" : "no");
  return 0;
}
